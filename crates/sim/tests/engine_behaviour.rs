//! Behavioural tests of the engine pipeline, exercised through the public
//! API (moved out of `engine.rs` when the step loop was split into
//! `phases/` modules).

use ttdc_core::Schedule;
use ttdc_sim::{
    CaptureModel, CrashModel, FaultPlan, GilbertElliott, RadioState, ScheduleMac, SimConfig,
    SimError, Simulator, Topology, TraceEvent, TrafficPattern,
};
use ttdc_util::BitSet;

fn rr_mac(n: usize) -> ScheduleMac {
    let t = (0..n).map(|i| BitSet::from_iter(n, [i])).collect();
    ScheduleMac::new("rr", Schedule::non_sleeping(n, t))
}

#[test]
fn saturated_two_nodes_alternate_perfectly() {
    // 2 nodes, round-robin: every slot is a guaranteed success on the
    // single link, alternating direction.
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    let mac = rr_mac(2);
    sim.run(&mac, 10);
    let r = sim.report();
    assert_eq!(r.slots, 10);
    assert_eq!(r.collisions, 0);
    assert_eq!(r.link_success[&(0, 1)], 5);
    assert_eq!(r.link_success[&(1, 0)], 5);
}

#[test]
fn saturated_star_collides_under_all_transmit() {
    // Non-sleeping "everyone transmits every slot" schedule on a star:
    // the hub always sees ≥ 2 transmitters → collisions, no successes.
    let n = 4;
    let t = vec![BitSet::from_iter(n, 1..n)]; // leaves transmit
    let r = vec![BitSet::from_iter(n, [0])]; // hub listens
    let mac = ScheduleMac::new("all-leaves", Schedule::new(n, t, r));
    let mut sim = Simulator::new(
        Topology::star(n),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    sim.run(&mac, 8);
    let rep = sim.report();
    assert_eq!(rep.collisions, 8, "hub collides every slot");
    assert!(rep.link_success.is_empty());
}

#[test]
fn unicast_delivery_on_pair() {
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::CbrUnicast { period: 4 },
        SimConfig {
            seed: 1,
            ..Default::default()
        },
    );
    let mac = rr_mac(2);
    sim.run(&mac, 40);
    let r = sim.report();
    assert!(r.generated >= 18, "CBR generates steadily: {}", r.generated);
    assert_eq!(r.collisions, 0);
    assert!(r.delivered + r.backlog + r.undeliverable >= r.generated - 2);
    assert!(r.delivered > 0);
    assert!(r.delivery_ratio() > 0.5, "{}", r.delivery_ratio());
    assert!(r.latency.mean() >= 0.0);
}

#[test]
fn energy_accounting_splits_states() {
    // Round-robin on 2 nodes: each node transmits half the slots
    // (saturated), listens the other half → no sleep.
    let cfg = SimConfig::default();
    let mut sim = Simulator::new(Topology::line(2), TrafficPattern::SaturatedBroadcast, cfg);
    sim.run(&rr_mac(2), 10);
    let r = sim.report();
    for v in 0..2 {
        assert_eq!(r.energy.tx_slots[v], 5);
        assert_eq!(r.energy.listen_slots[v], 5);
        assert_eq!(r.energy.sleep_slots[v], 0);
        assert_eq!(r.energy.duty_cycle(v), 1.0);
    }
    let expect = 5.0 * cfg.energy.slot_energy_mj(RadioState::Transmit)
        + 5.0 * cfg.energy.slot_energy_mj(RadioState::Listen);
    assert!((r.energy.consumed_mj[0] - expect).abs() < 1e-9);
}

#[test]
fn missed_listen_slots_are_charged_as_sleep() {
    // With a sync-miss probability, a node that rolls a miss on its listen
    // slot never turns the radio on — the energy phase must charge Sleep
    // for those slots, not Listen. Invariant: listen slots plus missed
    // (slept) listen slots account for every scheduled listen.
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 3,
            miss_probability: 0.4,
            ..Default::default()
        },
    );
    sim.run(&rr_mac(2), 2000);
    let r = sim.report();
    for v in 0..2 {
        // Round-robin: 1000 transmit opportunities and 1000 listen slots
        // per node. Misses shift slots from tx/listen into sleep.
        assert_eq!(
            r.energy.tx_slots[v] + r.energy.listen_slots[v] + r.energy.sleep_slots[v],
            2000
        );
        assert!(
            r.energy.sleep_slots[v] > 500,
            "~40% of 2000 scheduled slots should be missed and slept: {}",
            r.energy.sleep_slots[v]
        );
        assert!(r.energy.listen_slots[v] < 1000, "misses reduce listening");
    }
}

#[test]
fn sleeping_nodes_save_energy() {
    // Duty-cycled pair inside a 4-node line: nodes 2,3 always sleep.
    let n = 4;
    let t = vec![BitSet::from_iter(n, [0]), BitSet::from_iter(n, [1])];
    let r = vec![BitSet::from_iter(n, [1]), BitSet::from_iter(n, [0])];
    let mac = ScheduleMac::new("pair", Schedule::new(n, t, r));
    let mut sim = Simulator::new(
        Topology::line(n),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    sim.run(&mac, 20);
    let rep = sim.report();
    assert_eq!(rep.energy.sleep_slots[2], 20);
    assert_eq!(rep.energy.sleep_slots[3], 20);
    assert!(rep.energy.consumed_mj[2] < rep.energy.consumed_mj[0] / 100.0);
    assert_eq!(rep.link_success[&(0, 1)], 10);
}

#[test]
fn convergecast_reaches_sink_over_multiple_hops() {
    // Line 0-1-2, sink 0; node 2's packets need two hops.
    let n = 3;
    let mut sim = Simulator::new(
        Topology::line(n),
        TrafficPattern::Convergecast {
            sink: 0,
            rate: 0.05,
        },
        SimConfig {
            seed: 42,
            ..Default::default()
        },
    );
    let mac = rr_mac(n);
    sim.run(&mac, 3000);
    let r = sim.report();
    assert!(r.generated > 100);
    assert!(r.delivery_ratio() > 0.8, "ratio {}", r.delivery_ratio());
    assert!(
        r.hop_deliveries > r.delivered,
        "multi-hop forwarding must show up: {} hops vs {} deliveries",
        r.hop_deliveries,
        r.delivered
    );
    assert!(r.latency.mean() > 0.0);
}

#[test]
fn disconnected_generator_counts_undeliverable() {
    // Node 2 is isolated; unicast generation there is undeliverable.
    let mut topo = Topology::empty(3);
    topo.add_edge(0, 1);
    let mut sim = Simulator::new(
        topo,
        TrafficPattern::CbrUnicast { period: 2 },
        SimConfig::default(),
    );
    sim.run(&rr_mac(3), 20);
    let r = sim.report();
    assert!(r.undeliverable > 0);
    // Single-hop conservation: every generated packet is delivered,
    // dropped as undeliverable, or still queued.
    assert_eq!(r.generated, r.delivered + r.undeliverable + r.backlog);
}

#[test]
fn miss_probability_degrades_throughput() {
    let run = |miss: f64| {
        let mut sim = Simulator::new(
            Topology::line(2),
            TrafficPattern::SaturatedBroadcast,
            SimConfig {
                seed: 3,
                miss_probability: miss,
                ..Default::default()
            },
        );
        sim.run(&rr_mac(2), 2000);
        let r = sim.report();
        r.link_success.values().sum::<u64>()
    };
    let perfect = run(0.0);
    let sloppy = run(0.3);
    assert_eq!(perfect, 2000);
    assert!(sloppy < perfect, "{sloppy} !< {perfect}");
    assert!(
        sloppy > 500,
        "sync jitter should not kill the link: {sloppy}"
    );
}

#[test]
fn topology_swap_reroutes_convergecast() {
    // Start with line 0-1-2 (sink 0). Swap to a topology where 2
    // connects directly to 0: packets should still flow.
    let n = 3;
    let mut sim = Simulator::new(
        Topology::line(n),
        TrafficPattern::Convergecast { sink: 0, rate: 0.1 },
        SimConfig {
            seed: 9,
            ..Default::default()
        },
    );
    let mac = rr_mac(n);
    sim.run(&mac, 500);
    let mut t2 = Topology::empty(n);
    t2.add_edge(0, 2);
    t2.add_edge(0, 1);
    sim.set_topology(t2);
    sim.run(&mac, 500);
    let r = sim.report();
    assert!(r.delivery_ratio() > 0.7, "ratio {}", r.delivery_ratio());
}

#[test]
fn determinism_in_seed() {
    let run = |seed| {
        let mut sim = Simulator::new(
            Topology::ring(5),
            TrafficPattern::PoissonUnicast { rate: 0.2 },
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        sim.run(&rr_mac(5), 300);
        let r = sim.report();
        (r.generated, r.delivered, r.collisions, r.hop_deliveries)
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn capture_decodes_the_much_closer_sender() {
    // Star: hub 0 listens; leaves 1 (very close) and 2 (far) transmit
    // simultaneously. Without capture: collision. With capture at
    // ratio 2: leaf 1 wins every slot.
    let n = 3;
    let topo = Topology::star(n);
    let t = vec![BitSet::from_iter(n, [1, 2])];
    let r = vec![BitSet::from_iter(n, [0])];
    let mac = ScheduleMac::new("both", Schedule::new(n, t, r));
    let positions = vec![(0.0, 0.0), (0.05, 0.0), (0.9, 0.0)];

    let mut plain = Simulator::new(
        topo.clone(),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    plain.run(&mac, 10);
    let rp = plain.report();
    assert_eq!(rp.collisions, 10);
    assert!(rp.link_success.is_empty());

    let mut cap = Simulator::new(
        topo,
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    cap.enable_capture(positions, CaptureModel { ratio: 2.0 });
    cap.run(&mac, 10);
    let rc = cap.report();
    assert_eq!(rc.collisions, 0);
    assert_eq!(rc.link_success[&(1, 0)], 10, "closest sender captures");
    assert!(!rc.link_success.contains_key(&(2, 0)));
}

#[test]
fn capture_below_threshold_still_collides() {
    let n = 3;
    let topo = Topology::star(n);
    let t = vec![BitSet::from_iter(n, [1, 2])];
    let r = vec![BitSet::from_iter(n, [0])];
    let mac = ScheduleMac::new("both", Schedule::new(n, t, r));
    // Nearly equidistant: ratio 1.1 < required 2.0.
    let positions = vec![(0.0, 0.0), (0.50, 0.0), (0.55, 0.0)];
    let mut sim = Simulator::new(
        topo,
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    sim.enable_capture(positions, CaptureModel { ratio: 2.0 });
    sim.run(&mac, 10);
    assert_eq!(sim.report().collisions, 10);
}

#[test]
#[should_panic(expected = "one position per node")]
fn capture_requires_all_positions() {
    let mut sim = Simulator::new(
        Topology::line(3),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    sim.enable_capture(vec![(0.0, 0.0)], CaptureModel { ratio: 2.0 });
}

#[test]
fn battery_exhaustion_kills_nodes_and_sets_lifetime() {
    // Tiny battery: listening costs 0.45 mJ/slot, so a 9 mJ battery
    // lasts exactly 20 always-listening slots.
    let cfg = SimConfig {
        battery_capacity_mj: Some(9.0),
        ..Default::default()
    };
    let mut sim = Simulator::new(Topology::line(2), TrafficPattern::SaturatedBroadcast, cfg);
    let mac = rr_mac(2);
    sim.run(&mac, 100);
    let r = sim.report();
    assert_eq!(r.deaths, 2);
    assert!(sim.is_dead(0) && sim.is_dead(1));
    assert_eq!(sim.dead_count(), 2);
    let death = r.first_death_slot.expect("someone must die");
    // tx 0.6 + listen 0.45 alternating: ~17 slots to burn 9 mJ.
    assert!((15..=19).contains(&death), "death at {death}");
    // Dead nodes stop consuming: totals are capped near the capacity.
    assert!(r.energy.consumed_mj[0] <= 9.0 + 0.61);
    // And stop communicating: successes stop after death.
    assert!(r.link_success[&(0, 1)] < 15);
}

#[test]
fn dead_nodes_generate_nothing() {
    let cfg = SimConfig {
        battery_capacity_mj: Some(1.0),
        seed: 4,
        ..Default::default()
    };
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::CbrUnicast { period: 1 },
        cfg,
    );
    sim.run(&rr_mac(2), 500);
    let r = sim.report();
    assert_eq!(r.deaths, 2);
    // Generation stops shortly after both died (~2-3 slots in).
    assert!(r.generated < 20, "{}", r.generated);
}

#[test]
fn trace_records_lifecycle_events() {
    let cfg = SimConfig {
        trace_capacity: 1000,
        seed: 1,
        ..Default::default()
    };
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::CbrUnicast { period: 5 },
        cfg,
    );
    sim.run(&rr_mac(2), 50);
    let r = sim.report();
    let has = |f: &dyn Fn(&TraceEvent) -> bool| r.trace.events().any(|(_, e)| f(e));
    assert!(has(&|e| matches!(e, TraceEvent::Generated { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::Transmitted { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::HopDelivered { .. })));
    assert!(!has(&|e| matches!(e, TraceEvent::Collision { .. })));
    // Trace slots are monotone.
    let slots: Vec<u64> = r.trace.events().map(|&(s, _)| s).collect();
    assert!(slots.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn trace_disabled_by_default() {
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    sim.run(&rr_mac(2), 10);
    assert!(sim.report().trace.is_empty());
}

#[test]
#[should_panic(expected = "sink out of range")]
fn bad_sink_rejected() {
    Simulator::new(
        Topology::line(2),
        TrafficPattern::Convergecast { sink: 5, rate: 0.1 },
        SimConfig::default(),
    );
}

// ---- fault injection ----

#[test]
fn fault_counters_stay_zero_without_faults() {
    let mut sim = Simulator::new(
        Topology::ring(5),
        TrafficPattern::PoissonUnicast { rate: 0.2 },
        SimConfig {
            seed: 7,
            ..Default::default()
        },
    );
    sim.run(&rr_mac(5), 300);
    let r = sim.report();
    assert_eq!(
        (
            r.link_drops,
            r.crashes,
            r.recoveries,
            r.retry_exhausted,
            r.crash_dropped
        ),
        (0, 0, 0, 0, 0)
    );
    assert_eq!(r.fault_drops(), 0);
    assert_eq!(r.link_drop_rate(), 0.0);
}

#[test]
fn unbounded_arq_budget_matches_legacy_behaviour() {
    // A huge retry budget enables the ARQ pass but never drops, so the
    // observable report matches the no-fault run with the same seed —
    // the pre-ARQ engine was exactly "retry forever".
    let run = |faults: FaultPlan| {
        let mut sim = Simulator::new(
            Topology::line(4),
            TrafficPattern::Convergecast { sink: 0, rate: 0.1 },
            SimConfig {
                seed: 21,
                faults,
                ..Default::default()
            },
        );
        sim.run(&rr_mac(4), 1500);
        let r = sim.report();
        (
            r.generated,
            r.delivered,
            r.hop_deliveries,
            r.collisions,
            r.undeliverable,
            r.backlog,
            format!("{:?}", r.latency.mean()),
        )
    };
    assert_eq!(
        run(FaultPlan::none()),
        run(FaultPlan::none().with_max_retries(u32::MAX))
    );
}

#[test]
fn uniform_link_loss_erases_saturated_receptions() {
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 2,
            faults: FaultPlan::lossy(0.3),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(2), 2000);
    let r = sim.report();
    let successes: u64 = r.link_success.values().sum();
    // Every slot is decoded by exactly one listener; loss erases ~30%.
    assert_eq!(successes + r.link_drops, 2000);
    assert!(r.link_drops > 450, "{}", r.link_drops);
    assert!(
        (r.link_drop_rate() - 0.3).abs() < 0.05,
        "{}",
        r.link_drop_rate()
    );
}

#[test]
fn bursty_channel_hits_its_stationary_loss() {
    // A Gilbert–Elliott channel with 50% stationary bad time and a
    // lossless good state drops roughly per_bad × π_bad of receptions.
    let ge = GilbertElliott {
        p_good_to_bad: 0.02,
        p_bad_to_good: 0.02,
        per_good: 0.0,
        per_bad: 1.0,
    };
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 8,
            faults: FaultPlan::default().with_burst(ge),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(2), 4000);
    let r = sim.report();
    let drop_rate = r.link_drop_rate();
    assert!(
        (drop_rate - 0.5).abs() < 0.15,
        "stationary loss ~50%, got {drop_rate}"
    );
}

#[test]
fn arq_exhaustion_is_observable_in_report_and_trace() {
    // Total link loss + a 3-retry budget: every packet is abandoned
    // after 4 failed transmissions; nothing is ever delivered.
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::CbrUnicast { period: 10 },
        SimConfig {
            seed: 5,
            trace_capacity: 4096,
            faults: FaultPlan::lossy(1.0).with_max_retries(3),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(2), 400);
    let r = sim.report();
    assert_eq!(r.delivered, 0);
    assert!(r.retry_exhausted > 0);
    assert!(r.link_drops >= 4 * r.retry_exhausted);
    assert_eq!(
        r.generated,
        r.delivered + r.undeliverable + r.retry_exhausted + r.backlog,
        "conservation: {r:?}"
    );
    let has = |f: &dyn Fn(&TraceEvent) -> bool| r.trace.events().any(|(_, e)| f(e));
    assert!(has(&|e| matches!(e, TraceEvent::RetryExhausted { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::LinkDropped { .. })));
}

#[test]
fn crashes_recover_and_lose_queues() {
    let mut sim = Simulator::new(
        Topology::line(4),
        TrafficPattern::Convergecast { sink: 0, rate: 0.2 },
        SimConfig {
            seed: 13,
            trace_capacity: 1 << 16,
            faults: FaultPlan::default().with_crash(CrashModel::new(0.02, 0.25)),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(4), 3000);
    let r = sim.report();
    assert!(r.crashes > 10, "{}", r.crashes);
    assert!(r.recoveries > 10, "{}", r.recoveries);
    assert!(
        r.crash_dropped > 0,
        "a busy relay should crash with a queue"
    );
    assert!(r.crash_dropped <= r.undeliverable);
    assert_eq!(r.generated, r.delivered + r.undeliverable + r.backlog);
    assert!(r.delivered > 0, "the network still works between crashes");
    let has = |f: &dyn Fn(&TraceEvent) -> bool| r.trace.events().any(|(_, e)| f(e));
    assert!(has(&|e| matches!(e, TraceEvent::NodeCrashed { .. })));
    assert!(has(&|e| matches!(e, TraceEvent::NodeRecovered { .. })));
}

#[test]
fn persistent_queues_survive_crashes() {
    let crash = CrashModel {
        crash_probability: 0.02,
        recovery_probability: 0.25,
        persist_queue: true,
    };
    let mut sim = Simulator::new(
        Topology::line(4),
        TrafficPattern::Convergecast { sink: 0, rate: 0.2 },
        SimConfig {
            seed: 13,
            faults: FaultPlan::default().with_crash(crash),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(4), 3000);
    let r = sim.report();
    assert!(r.crashes > 10);
    assert_eq!(r.crash_dropped, 0, "persisted queues drop nothing");
    assert_eq!(r.generated, r.delivered + r.undeliverable + r.backlog);
}

#[test]
fn permanently_crashed_network_goes_silent() {
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 1,
            faults: FaultPlan::default().with_crash(CrashModel::new(1.0, 0.0)),
            ..Default::default()
        },
    );
    sim.run(&rr_mac(2), 50);
    let r = sim.report();
    assert!(r.link_success.is_empty(), "crashed nodes never transmit");
    assert_eq!(sim.crashed_count(), 2);
    assert!(sim.is_crashed(0) && sim.is_crashed(1));
    assert_eq!(sim.dead_count(), 0, "crash is not battery death");
    // Radios are off: only the sleep floor is consumed.
    let sleep_only = 50.0 * sim.energy_model().slot_energy_mj(RadioState::Sleep);
    assert!((r.energy.consumed_mj[0] - sleep_only).abs() < 1e-9);
}

#[test]
fn clock_drift_breaks_schedule_agreement() {
    let run = |drift: f64| {
        let mut sim = Simulator::new(
            Topology::line(2),
            TrafficPattern::SaturatedBroadcast,
            SimConfig {
                seed: 5,
                faults: FaultPlan::default().with_drift(drift),
                ..Default::default()
            },
        );
        sim.run(&rr_mac(2), 2000);
        sim.report().link_success.values().sum::<u64>()
    };
    let perfect = run(0.0);
    let drifted = run(0.2);
    assert_eq!(perfect, 2000);
    assert!(drifted < 1900, "relative skew must cost slots: {drifted}");
    assert!(
        drifted > 100,
        "drifted clocks still agree sometimes: {drifted}"
    );
}

#[test]
fn faulted_runs_are_deterministic_in_seed() {
    let plan = FaultPlan::lossy(0.1)
        .with_burst(GilbertElliott::bursty(0.01, 0.2))
        .with_crash(CrashModel::new(0.005, 0.1))
        .with_drift(0.01)
        .with_max_retries(5);
    let run = |seed| {
        let mut sim = Simulator::new(
            Topology::ring(6),
            TrafficPattern::Convergecast {
                sink: 0,
                rate: 0.15,
            },
            SimConfig {
                seed,
                faults: plan,
                ..Default::default()
            },
        );
        sim.run(&rr_mac(6), 800);
        let r = sim.report();
        (
            r.generated,
            r.delivered,
            r.link_drops,
            r.crashes,
            r.recoveries,
            r.retry_exhausted,
            r.crash_dropped,
            r.backlog,
        )
    };
    assert_eq!(run(31), run(31));
    assert_ne!(run(31), run(32));
}

#[test]
fn try_new_reports_typed_errors() {
    let err = Simulator::try_new(
        Topology::line(2),
        TrafficPattern::Convergecast { sink: 5, rate: 0.1 },
        SimConfig::default(),
    )
    .unwrap_err();
    assert_eq!(err, SimError::SinkOutOfRange { sink: 5, nodes: 2 });

    let err = Simulator::try_new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            miss_probability: 1.5,
            ..Default::default()
        },
    )
    .unwrap_err();
    assert_eq!(err, SimError::InvalidMissProbability { value: 1.5 });

    let err = Simulator::try_new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            faults: FaultPlan::lossy(2.0),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, SimError::InvalidProbability { .. }));
}

#[test]
fn try_new_rejects_nan_miss_probability() {
    // NaN fails every range comparison, so `!(0.0..=1.0).contains(&p)`
    // must reject it — silently accepting NaN would poison every
    // `gen_bool(miss)` draw downstream.
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.01] {
        let err = Simulator::try_new(
            Topology::line(2),
            TrafficPattern::SaturatedBroadcast,
            SimConfig {
                miss_probability: bad,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidMissProbability { .. }),
            "{bad} must be rejected, got {err:?}"
        );
    }
}

#[test]
#[should_panic(expected = "per-link error rate must be in [0, 1]")]
fn invalid_fault_plan_panics_in_new() {
    Simulator::new(
        Topology::line(2),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            faults: FaultPlan::lossy(-0.5),
            ..Default::default()
        },
    );
}

#[test]
fn try_enable_capture_reports_typed_errors() {
    let mut sim = Simulator::new(
        Topology::line(3),
        TrafficPattern::SaturatedBroadcast,
        SimConfig::default(),
    );
    let err = sim
        .try_enable_capture(vec![(0.0, 0.0)], CaptureModel { ratio: 2.0 })
        .unwrap_err();
    assert_eq!(
        err,
        SimError::PositionCountMismatch {
            positions: 1,
            nodes: 3
        }
    );
    let positions = vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)];
    let err = sim
        .try_enable_capture(positions.clone(), CaptureModel { ratio: 0.5 })
        .unwrap_err();
    assert_eq!(err, SimError::CaptureRatioTooSmall { ratio: 0.5 });
    assert!(sim
        .try_enable_capture(positions, CaptureModel { ratio: 2.0 })
        .is_ok());
}

/// A MAC whose p-persistence is deliberately out of range, to pin the
/// clamp-at-call-site behaviour (release builds sanitize; debug builds
/// flag the protocol bug with a `debug_assert!`).
struct BadProbabilityMac(f64);

impl ttdc_sim::MacProtocol for BadProbabilityMac {
    fn name(&self) -> &str {
        "bad-probability"
    }
    fn frame_length(&self) -> usize {
        1
    }
    fn may_transmit(&self, _node: usize, _slot: u64) -> bool {
        true
    }
    fn may_receive(&self, _node: usize, _slot: u64) -> bool {
        true
    }
    fn transmit_probability(&self, _node: usize, _slot: u64) -> f64 {
        self.0
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "transmit_probability must be in [0, 1]")]
fn out_of_range_transmit_probability_is_flagged_in_debug() {
    let mut sim = Simulator::new(
        Topology::line(2),
        TrafficPattern::CbrUnicast { period: 1 },
        SimConfig {
            schedule_aware_senders: false,
            ..Default::default()
        },
    );
    sim.run(&BadProbabilityMac(f64::NAN), 5);
}
