//! The event-driven time-skipping engine must be bit-identical to the
//! slot-by-slot pipelines.
//!
//! [`Simulator::run`] dispatches eligible runs (frame-periodic MAC, zero
//! drift, zero sync-miss, no crash plan, saturated/CBR traffic, no user
//! observers) through the slot calendar; [`Simulator::run_sparse`] and
//! [`Simulator::run_dense`] force the reference paths. The properties
//! here pin all three to the same *full* [`SimReport`] — every counter,
//! the per-node energy ledger `f64`s, the latency histogram bit patterns,
//! and the retained event trace — across random topologies and schedules,
//! per-link loss and bursty (Gilbert-Elliott) fault plans, ARQ bounds,
//! battery depletion, mid-run engine transitions, and 1- vs 4-thread
//! rayon pools; and they pin the fallback dispatch for every
//! configuration the calendar cannot represent (drift, sync-miss, crash
//! plans, Poisson-style traffic).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::ThreadPool;
use std::sync::OnceLock;
use ttdc_core::Schedule;
use ttdc_sim::{
    CrashModel, FaultPlan, GilbertElliott, MacProtocol, ScheduleMac, SimConfig, SimReport,
    Simulator, Topology, TrafficPattern,
};
use ttdc_util::BitSet;

fn sequential_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
    })
}

fn parallel_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    })
}

/// A randomized fault plan over the axes the skip engine *admits*:
/// per-link loss and Gilbert-Elliott bursts (their lazily-advanced chains
/// only draw on actual receptions) and the ARQ retry bound. Drift, crash
/// plans, and sync-miss are fallback triggers with their own properties.
fn arb_skippable_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop_oneof![Just(0.0f64), 0.0f64..0.9],
        prop::option::of((0.001f64..0.5, 0.001f64..0.5)),
        prop::option::of(0u32..6),
    )
        .prop_map(|(per, burst, max_retries)| {
            let mut plan = FaultPlan::none().with_per(per);
            if let Some(m) = max_retries {
                plan = plan.with_max_retries(m);
            }
            if let Some((gb, bg)) = burst {
                plan = plan.with_burst(GilbertElliott::bursty(gb, bg));
            }
            plan
        })
}

/// A random degree-capped topology with a random periodic schedule MAC —
/// including duty-cycled slots where most (or all) nodes sleep, and
/// frames with no transmit opportunities at all (an empty calendar).
fn arb_scenario() -> impl Strategy<Value = (Topology, ScheduleMac)> {
    (3usize..10).prop_flat_map(|n| {
        let topo = (0u64..1000, 2usize..5).prop_map(move |(seed, dcap)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Topology::random_gnp_capped(n, 0.4, dcap, &mut rng)
        });
        let mac = prop::collection::vec(
            (0u32..(1 << n), prop::bits::u32::masked((1 << n) - 1)),
            1..6,
        )
        .prop_map(move |slots| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                t.push(BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)));
                r.push(BitSet::from_iter(
                    n,
                    (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0),
                ));
            }
            ScheduleMac::new("prop", Schedule::new(n, t, r))
        });
        (topo, mac)
    })
}

/// The traffic patterns the calendar can represent: saturated broadcast
/// and CBR, with periods from every-slot storms to long quiet stretches
/// (where nearly the whole run is skipped).
fn arb_skippable_pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::SaturatedBroadcast),
        (1u64..12).prop_map(|period| TrafficPattern::CbrUnicast { period }),
        (50u64..2000).prop_map(|period| TrafficPattern::CbrUnicast { period }),
    ]
}

fn fresh(
    topo: &Topology,
    pattern: &TrafficPattern,
    seed: u64,
    faults: &FaultPlan,
    battery: Option<f64>,
    miss: f64,
) -> Simulator {
    Simulator::new(
        topo.clone(),
        *pattern,
        SimConfig {
            seed,
            faults: *faults,
            trace_capacity: 64,
            battery_capacity_mj: battery,
            miss_probability: miss,
            ..Default::default()
        },
    )
}

/// Forced `run_skipping()`, forced `run_sparse()`, and forced
/// `run_dense()` on identical inputs.
fn all_three_reports(
    topo: &Topology,
    mac: &dyn MacProtocol,
    pattern: &TrafficPattern,
    seed: u64,
    faults: &FaultPlan,
    battery: Option<f64>,
    slots: u64,
) -> (SimReport, SimReport, SimReport) {
    let mut skip = fresh(topo, pattern, seed, faults, battery, 0.0);
    skip.run_skipping(mac, slots);
    let mut sparse = fresh(topo, pattern, seed, faults, battery, 0.0);
    sparse.run_sparse(mac, slots);
    let mut dense = fresh(topo, pattern, seed, faults, battery, 0.0);
    dense.run_dense(mac, slots);
    (skip.report(), sparse.report(), dense.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The heart of the contract: across schedules, loss/burst fault
    /// plans, battery caps, and both traffic calendars, the skipping
    /// engine reproduces the sparse and dense reports bit for bit, on a
    /// 1-thread and a 4-thread rayon pool alike. Battery caps low enough
    /// to kill nodes mid-run exercise the epoch loop's sparse windows and
    /// death re-sync.
    #[test]
    fn skipping_is_bit_identical_to_sparse_and_dense(
        (topo, mac) in arb_scenario(),
        pattern in arb_skippable_pattern(),
        plan in arb_skippable_fault_plan(),
        battery in prop::option::of(2.0f64..60.0),
        seed in 0u64..500,
        slots in 50u64..400,
    ) {
        let (skip_seq, sparse_seq, dense_seq) = sequential_pool()
            .install(|| all_three_reports(&topo, &mac, &pattern, seed, &plan, battery, slots));
        prop_assert_eq!(&skip_seq, &sparse_seq);
        prop_assert_eq!(&skip_seq, &dense_seq);
        let (skip_par, sparse_par, _) = parallel_pool()
            .install(|| all_three_reports(&topo, &mac, &pattern, seed, &plan, battery, slots));
        prop_assert_eq!(&skip_par, &sparse_par);
        // Pool size must not matter either.
        prop_assert_eq!(&skip_seq, &skip_par);
        // The trace really was compared, not disabled on both sides.
        prop_assert!(skip_seq.trace.enabled());
    }

    /// Mid-run engine transitions on one simulator: skip → sparse → skip
    /// and sparse → skip → dense chunks must equal one uninterrupted
    /// dense run — queues, ARQ retry counts, fault chains, the energy
    /// ledger, and the calendar re-sync all survive the handoffs.
    #[test]
    fn chunked_mode_transitions_match_single_run(
        (topo, mac) in arb_scenario(),
        pattern in arb_skippable_pattern(),
        plan in arb_skippable_fault_plan(),
        battery in prop::option::of(2.0f64..60.0),
        seed in 0u64..300,
        first in 20u64..150,
        second in 20u64..150,
        third in 20u64..150,
    ) {
        let mut whole = fresh(&topo, &pattern, seed, &plan, battery, 0.0);
        whole.run_dense(&mac, first + second + third);
        let whole = whole.report();

        let mut a = fresh(&topo, &pattern, seed, &plan, battery, 0.0);
        a.run_skipping(&mac, first);
        a.run_sparse(&mac, second);
        a.run_skipping(&mac, third);
        prop_assert_eq!(&a.report(), &whole);

        let mut b = fresh(&topo, &pattern, seed, &plan, battery, 0.0);
        b.run_sparse(&mac, first);
        b.run_skipping(&mac, second);
        b.run_dense(&mac, third);
        prop_assert_eq!(&b.report(), &whole);
    }

    /// Every configuration whose randomness the calendar cannot represent
    /// must fall back transparently: `run_skipping()` (and the `run()`
    /// dispatcher) still equal the dense reference under clock drift,
    /// sync-miss, crash plans, and Poisson-style traffic.
    #[test]
    fn non_calendar_randomness_falls_back(
        (topo, mac) in arb_scenario(),
        which in 0usize..4,
        knob in 0.01f64..0.4,
        seed in 0u64..300,
        slots in 50u64..300,
    ) {
        let mut plan = FaultPlan::none();
        let mut pattern = TrafficPattern::CbrUnicast { period: 5 };
        let mut miss = 0.0;
        match which {
            0 => plan = plan.with_drift(knob),
            1 => miss = knob,
            2 => plan = plan.with_crash(CrashModel::new(knob * 0.1, 0.2)),
            _ => pattern = TrafficPattern::PoissonUnicast { rate: knob },
        }
        let mut skip = fresh(&topo, &pattern, seed, &plan, None, miss);
        skip.run_skipping(&mac, slots);
        let mut via_run = fresh(&topo, &pattern, seed, &plan, None, miss);
        via_run.run(&mac, slots);
        let mut dense = fresh(&topo, &pattern, seed, &plan, None, miss);
        dense.run_dense(&mac, slots);
        prop_assert_eq!(&skip.report(), &dense.report());
        prop_assert_eq!(&via_run.report(), &dense.report());
    }
}
