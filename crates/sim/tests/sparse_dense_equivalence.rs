//! The sleep-sparse pipeline must be bit-identical to the dense scan.
//!
//! [`Simulator::run`] dispatches eligible runs (frame-periodic MAC, zero
//! clock drift) through the [`SlotPlan`]-driven sparse phases;
//! [`Simulator::run_dense`] forces the historical all-nodes scan. The
//! properties here pin the two paths to the same *full* [`SimReport`] —
//! every counter, the per-node energy ledger, the latency histogram bit
//! patterns, and the retained event trace — across random topologies,
//! schedules, fault plans, and 1- vs 4-thread rayon pools.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rayon::ThreadPool;
use std::sync::OnceLock;
use ttdc_core::Schedule;
use ttdc_sim::{
    CrashModel, FaultPlan, GilbertElliott, MacProtocol, ScheduleMac, SimConfig, SimReport,
    Simulator, Topology, TrafficPattern,
};
use ttdc_util::BitSet;

fn sequential_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
    })
}

fn parallel_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    })
}

/// A randomized [`FaultPlan`] spanning every axis *except* clock drift —
/// drift is the dense-fallback trigger and gets its own property below.
fn arb_driftless_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop_oneof![Just(0.0f64), 0.0f64..0.9],
        prop::option::of((0.001f64..0.5, 0.001f64..0.5)),
        prop::option::of((0.0f64..0.05, 0.0f64..0.5, any::<bool>())),
        prop::option::of(0u32..6),
    )
        .prop_map(|(per, burst, crash, max_retries)| {
            let mut plan = FaultPlan::none().with_per(per);
            if let Some(m) = max_retries {
                plan = plan.with_max_retries(m);
            }
            if let Some((gb, bg)) = burst {
                plan = plan.with_burst(GilbertElliott::bursty(gb, bg));
            }
            if let Some((c, r, persist)) = crash {
                let mut model = CrashModel::new(c, r);
                model.persist_queue = persist;
                plan = plan.with_crash(model);
            }
            plan
        })
}

/// A random degree-capped topology with a random periodic schedule MAC —
/// including duty-cycled slots where most (or all) nodes sleep.
fn arb_scenario() -> impl Strategy<Value = (Topology, ScheduleMac)> {
    (3usize..10).prop_flat_map(|n| {
        let topo = (0u64..1000, 2usize..5).prop_map(move |(seed, dcap)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Topology::random_gnp_capped(n, 0.4, dcap, &mut rng)
        });
        let mac = prop::collection::vec(
            (0u32..(1 << n), prop::bits::u32::masked((1 << n) - 1)),
            1..6,
        )
        .prop_map(move |slots| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                t.push(BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)));
                r.push(BitSet::from_iter(
                    n,
                    (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0),
                ));
            }
            ScheduleMac::new("prop", Schedule::new(n, t, r))
        });
        (topo, mac)
    })
}

fn arb_pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::SaturatedBroadcast),
        (0.01f64..0.3).prop_map(|rate| TrafficPattern::PoissonUnicast { rate }),
        (0.01f64..0.15).prop_map(|rate| TrafficPattern::Convergecast { sink: 0, rate }),
    ]
}

fn fresh(
    topo: &Topology,
    pattern: &TrafficPattern,
    seed: u64,
    faults: &FaultPlan,
    battery: Option<f64>,
) -> Simulator {
    Simulator::new(
        topo.clone(),
        *pattern,
        SimConfig {
            seed,
            faults: *faults,
            trace_capacity: 64,
            battery_capacity_mj: battery,
            ..Default::default()
        },
    )
}

/// `run()` (sparse-dispatched) and `run_dense()` on identical inputs.
fn both_reports(
    topo: &Topology,
    mac: &dyn MacProtocol,
    pattern: &TrafficPattern,
    seed: u64,
    faults: &FaultPlan,
    battery: Option<f64>,
    slots: u64,
) -> (SimReport, SimReport) {
    let mut sparse = fresh(topo, pattern, seed, faults, battery);
    sparse.run(mac, slots);
    let mut dense = fresh(topo, pattern, seed, faults, battery);
    dense.run_dense(mac, slots);
    (sparse.report(), dense.report())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Zero drift + periodic MAC: the sparse pipeline engages and must
    /// reproduce the dense report bit for bit, on a 1-thread and a
    /// 4-thread rayon pool alike. The optional battery cap exercises both
    /// tiers of the sparse energy pass (the bulk no-battery sweep and the
    /// death-checked gap walk).
    #[test]
    fn sparse_path_is_bit_identical_to_dense(
        (topo, mac) in arb_scenario(),
        pattern in arb_pattern(),
        plan in arb_driftless_fault_plan(),
        battery in prop::option::of(2.0f64..60.0),
        seed in 0u64..500,
        slots in 50u64..400,
    ) {
        prop_assert!(mac.frame_periodic(), "ScheduleMac wraps by definition");
        let (sparse_seq, dense_seq) = sequential_pool()
            .install(|| both_reports(&topo, &mac, &pattern, seed, &plan, battery, slots));
        prop_assert_eq!(&sparse_seq, &dense_seq);
        let (sparse_par, dense_par) = parallel_pool()
            .install(|| both_reports(&topo, &mac, &pattern, seed, &plan, battery, slots));
        prop_assert_eq!(&sparse_par, &dense_par);
        // Pool size must not matter either.
        prop_assert_eq!(&sparse_seq, &sparse_par);
        // The trace really was compared, not disabled on both sides.
        prop_assert!(sparse_seq.trace.enabled());
    }

    /// With clock drift active the dispatcher must fall back to the dense
    /// scan — `run()` and `run_dense()` stay interchangeable.
    #[test]
    fn drift_falls_back_to_dense(
        (topo, mac) in arb_scenario(),
        drift in 0.001f64..0.4,
        seed in 0u64..300,
        slots in 50u64..300,
    ) {
        let plan = FaultPlan::none().with_drift(drift);
        let pattern = TrafficPattern::PoissonUnicast { rate: 0.1 };
        let (via_run, via_dense) = both_reports(&topo, &mac, &pattern, seed, &plan, None, slots);
        prop_assert_eq!(via_run, via_dense);
    }

    /// Mode transitions on one simulator: a dense segment followed by a
    /// sparse segment (and the reverse) must equal one uninterrupted run —
    /// the per-slot scratch (`transmitting`/`listening` flags, rosters,
    /// word mask, queue indices) survives the handoff in both directions.
    #[test]
    fn chunked_mode_transitions_match_single_run(
        (topo, mac) in arb_scenario(),
        plan in arb_driftless_fault_plan(),
        seed in 0u64..300,
        first in 20u64..150,
        second in 20u64..150,
    ) {
        let pattern = TrafficPattern::PoissonUnicast { rate: 0.1 };
        let mut whole = fresh(&topo, &pattern, seed, &plan, None);
        whole.run_dense(&mac, first + second);
        let whole = whole.report();

        let mut dense_then_sparse = fresh(&topo, &pattern, seed, &plan, None);
        dense_then_sparse.run_dense(&mac, first);
        dense_then_sparse.run(&mac, second);
        prop_assert_eq!(&dense_then_sparse.report(), &whole);

        let mut sparse_then_dense = fresh(&topo, &pattern, seed, &plan, None);
        sparse_then_dense.run(&mac, first);
        sparse_then_dense.run_dense(&mac, second);
        prop_assert_eq!(&sparse_then_dense.report(), &whole);
    }
}
