//! Monte-Carlo replication must not depend on the thread count.
//!
//! `run_replications` collects per-seed reports in index order, so a
//! 4-thread pool must produce exactly the replication vector a forced
//! sequential run produces — and therefore identical [`McSummary`]
//! statistics, since `summarize` folds the reports in order.

use proptest::prelude::*;
use rayon::ThreadPool;
use std::sync::OnceLock;
use ttdc_core::Schedule;
use ttdc_sim::{
    run_replications, summarize, ScheduleMac, SimConfig, SimReport, Simulator, Topology,
    TrafficPattern,
};
use ttdc_util::BitSet;

fn sequential_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
    })
}

fn parallel_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    })
}

fn scenario(n: usize, rate: f64, slots: u64) -> impl Fn(u64) -> SimReport + Sync {
    move |seed| {
        let t = (0..n).map(|i| BitSet::from_iter(n, [i])).collect();
        let mac = ScheduleMac::new("rr", Schedule::non_sleeping(n, t));
        let mut sim = Simulator::new(
            Topology::ring(n),
            TrafficPattern::PoissonUnicast { rate },
            SimConfig {
                seed,
                ..Default::default()
            },
        );
        sim.run(&mac, slots);
        sim.report()
    }
}

/// The observable digest of a replication run (every deterministic counter
/// plus the bit patterns of the floating-point aggregates).
fn digest(r: &SimReport) -> (u64, u64, u64, u64, u64, u64, u64) {
    (
        r.generated,
        r.delivered,
        r.hop_deliveries,
        r.collisions,
        r.backlog,
        r.latency.mean().to_bits(),
        r.energy.mean_mj().to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Replication reports are identical, seed by seed, at 1 vs 4 threads.
    #[test]
    fn run_replications_matches_sequential(
        n in 3usize..6,
        reps in 1u64..12,
        base_seed in 0u64..1000,
    ) {
        let rate = 0.1;
        let slots = 300;
        let seq = sequential_pool().install(|| run_replications(reps, base_seed, scenario(n, rate, slots)));
        let par = parallel_pool().install(|| run_replications(reps, base_seed, scenario(n, rate, slots)));
        prop_assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            prop_assert_eq!(digest(a), digest(b));
        }
        // And the order-dependent summary statistics agree to the bit.
        let ss = summarize(&seq);
        let sp = summarize(&par);
        prop_assert_eq!(ss.delivery_ratio.mean().to_bits(), sp.delivery_ratio.mean().to_bits());
        prop_assert_eq!(ss.latency_mean.stddev().to_bits(), sp.latency_mean.stddev().to_bits());
        prop_assert_eq!(ss.energy_fairness.mean().to_bits(), sp.energy_fairness.mean().to_bits());
    }
}
