//! Property tests for the simulation engine: conservation laws and metric
//! sanity over random topologies, workloads, and protocol shapes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ttdc_core::Schedule;
use ttdc_sim::{
    CrashModel, FaultPlan, GilbertElliott, ScheduleMac, SimConfig, Simulator, Topology,
    TrafficPattern,
};
use ttdc_util::BitSet;

/// A randomized [`FaultPlan`] spanning all fault axes, including the noop
/// corner (all knobs zero) and plans with several axes active at once.
fn arb_fault_plan() -> impl Strategy<Value = FaultPlan> {
    (
        prop_oneof![Just(0.0f64), 0.0f64..0.9],
        prop::option::of((0.001f64..0.5, 0.001f64..0.5)),
        prop::option::of((0.0f64..0.05, 0.0f64..0.5, any::<bool>())),
        prop_oneof![Just(0.0f64), 0.0f64..0.4],
        prop::option::of(0u32..6),
    )
        .prop_map(|(per, burst, crash, drift, max_retries)| {
            let mut plan = FaultPlan::none().with_per(per).with_drift(drift);
            if let Some(m) = max_retries {
                plan = plan.with_max_retries(m);
            }
            if let Some((gb, bg)) = burst {
                plan = plan.with_burst(GilbertElliott::bursty(gb, bg));
            }
            if let Some((c, r, persist)) = crash {
                let mut model = CrashModel::new(c, r);
                model.persist_queue = persist;
                plan = plan.with_crash(model);
            }
            plan
        })
}

/// A random degree-capped topology together with a random periodic
/// schedule MAC over the same node count.
fn arb_scenario() -> impl Strategy<Value = (Topology, ScheduleMac)> {
    (3usize..10).prop_flat_map(|n| {
        let topo = (0u64..1000, 2usize..5).prop_map(move |(seed, dcap)| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Topology::random_gnp_capped(n, 0.4, dcap, &mut rng)
        });
        let mac = prop::collection::vec(
            (1u32..(1 << n), prop::bits::u32::masked((1 << n) - 1)),
            1..5,
        )
        .prop_map(move |slots| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                t.push(BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)));
                r.push(BitSet::from_iter(
                    n,
                    (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0),
                ));
            }
            ScheduleMac::new("prop", Schedule::new(n, t, r))
        });
        (topo, mac)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-hop unicast conservation: every generated packet is exactly
    /// one of delivered / undeliverable / still queued.
    #[test]
    fn unicast_conservation(
        (topo, mac) in arb_scenario(),
        seed in 0u64..500,
        rate in 0.01f64..0.3,
        slots in 50u64..400,
    ) {
        let mut sim = Simulator::new(
            topo,
            TrafficPattern::PoissonUnicast { rate },
            SimConfig { seed, ..Default::default() },
        );
        sim.run(&mac, slots);
        let r = sim.report();
        prop_assert_eq!(r.generated, r.delivered + r.undeliverable + r.backlog);
        prop_assert_eq!(r.delivered, r.hop_deliveries, "single-hop: one hop each");
        prop_assert_eq!(r.slots, slots);
    }

    /// Convergecast conservation: hop deliveries ≥ end-to-end deliveries,
    /// and generated = delivered + undeliverable + in-flight.
    #[test]
    fn convergecast_conservation(
        (topo, mac) in arb_scenario(),
        seed in 0u64..500,
        slots in 50u64..400,
    ) {
        let mut sim = Simulator::new(
            topo,
            TrafficPattern::Convergecast { sink: 0, rate: 0.05 },
            SimConfig { seed, ..Default::default() },
        );
        sim.run(&mac, slots);
        let r = sim.report();
        prop_assert!(r.hop_deliveries >= r.delivered);
        prop_assert_eq!(r.generated, r.delivered + r.undeliverable + r.backlog);
    }

    /// Energy sanity: per-node slot counts always sum to the horizon (until
    /// death), duty cycles live in [0,1], consumption is non-negative.
    #[test]
    fn energy_accounting_is_total(
        (topo, mac) in arb_scenario(),
        seed in 0u64..200,
        slots in 20u64..200,
    ) {
        let n = topo.num_nodes();
        let mut sim = Simulator::new(
            topo,
            TrafficPattern::SaturatedBroadcast,
            SimConfig { seed, ..Default::default() },
        );
        sim.run(&mac, slots);
        let r = sim.report();
        for v in 0..n {
            let total = r.energy.tx_slots[v] + r.energy.listen_slots[v] + r.energy.sleep_slots[v];
            prop_assert_eq!(total, slots, "node {} slot accounting", v);
            let d = r.energy.duty_cycle(v);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!(r.energy.consumed_mj[v] >= 0.0);
        }
        let (_, mean) = r.link_success_summary();
        prop_assert!(mean >= 0.0);
    }

    /// Battery exhaustion: deaths are monotone with horizon, first death is
    /// consistent with the death count, and dead nodes stop consuming.
    #[test]
    fn battery_invariants(
        (topo, mac) in arb_scenario(),
        seed in 0u64..200,
        capacity in 1.0f64..50.0,
    ) {
        let n = topo.num_nodes();
        let cfg = SimConfig {
            seed,
            battery_capacity_mj: Some(capacity),
            ..Default::default()
        };
        let mut sim = Simulator::new(
            topo,
            TrafficPattern::SaturatedBroadcast,
            cfg,
        );
        sim.run(&mac, 300);
        let r = sim.report();
        prop_assert_eq!(r.deaths as usize, sim.dead_count());
        if r.deaths > 0 {
            prop_assert!(r.first_death_slot.is_some());
            prop_assert!(r.first_death_slot.unwrap() < 300);
        }
        for v in 0..n {
            // A dead node's consumption is capped at capacity + one slot's
            // worth of the most expensive state.
            prop_assert!(
                r.energy.consumed_mj[v] <= capacity + cfg.energy.slot_energy_mj(ttdc_sim::RadioState::Transmit) + 1e-9
            );
        }
    }

    /// Determinism: identical configuration ⇒ identical report.
    #[test]
    fn determinism(seed in 0u64..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = Topology::random_gnp_capped(6, 0.4, 3, &mut rng);
        let t: Vec<BitSet> = (0..6).map(|i| BitSet::from_iter(6, [i])).collect();
        let mac = ScheduleMac::new("rr", Schedule::non_sleeping(6, t));
        let run = |topo: Topology| {
            let mut sim = Simulator::new(
                topo,
                TrafficPattern::PoissonUnicast { rate: 0.1 },
                SimConfig { seed, ..Default::default() },
            );
            sim.run(&mac, 200);
            let r = sim.report();
            (r.generated, r.delivered, r.collisions, r.undeliverable, r.backlog)
        };
        prop_assert_eq!(run(topo.clone()), run(topo));
    }

    /// Fault-mode conservation: even under randomized loss, bursts,
    /// crashes, drift, and bounded ARQ, every generated packet is exactly
    /// one of delivered / undeliverable / retry-exhausted / still queued.
    #[test]
    fn faulted_conservation(
        (topo, mac) in arb_scenario(),
        plan in arb_fault_plan(),
        seed in 0u64..500,
        slots in 50u64..400,
    ) {
        let mut sim = Simulator::new(
            topo,
            TrafficPattern::Convergecast { sink: 0, rate: 0.05 },
            SimConfig { seed, faults: plan, ..Default::default() },
        );
        sim.run(&mac, slots);
        let r = sim.report();
        prop_assert_eq!(
            r.generated,
            r.delivered + r.undeliverable + r.retry_exhausted + r.backlog,
            "gen {} = del {} + undel {} + exhausted {} + backlog {}",
            r.generated, r.delivered, r.undeliverable, r.retry_exhausted, r.backlog
        );
        // Crash-dropped packets are a subset of the undeliverable ones.
        prop_assert!(r.crash_dropped <= r.undeliverable);
        // Recoveries never outnumber crashes.
        prop_assert!(r.recoveries <= r.crashes);
        // Without a retry budget nothing can be retry-exhausted.
        if plan.max_retries.is_none() {
            prop_assert_eq!(r.retry_exhausted, 0);
        }
        prop_assert_eq!(r.slots, slots);
    }

    /// A noop fault plan is bit-for-bit the default engine: same seed ⇒
    /// identical report, faulted counters all zero.
    #[test]
    fn noop_fault_plan_matches_default(
        (topo, mac) in arb_scenario(),
        seed in 0u64..300,
        slots in 50u64..300,
    ) {
        let run = |faults: FaultPlan| {
            let mut sim = Simulator::new(
                topo.clone(),
                TrafficPattern::PoissonUnicast { rate: 0.1 },
                SimConfig { seed, faults, ..Default::default() },
            );
            sim.run(&mac, slots);
            let r = sim.report();
            (r.generated, r.delivered, r.collisions, r.undeliverable, r.backlog,
             r.link_drops, r.crashes, r.retry_exhausted)
        };
        let noop = run(FaultPlan::none());
        let default = run(FaultPlan::default());
        prop_assert_eq!(noop, default);
        prop_assert_eq!((noop.5, noop.6, noop.7), (0, 0, 0), "no fault events");
    }

    /// Faulted runs are deterministic in the seed too.
    #[test]
    fn faulted_determinism(
        plan in arb_fault_plan(),
        seed in 0u64..300,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = Topology::random_gnp_capped(6, 0.4, 3, &mut rng);
        let t: Vec<BitSet> = (0..6).map(|i| BitSet::from_iter(6, [i])).collect();
        let mac = ScheduleMac::new("rr", Schedule::non_sleeping(6, t));
        let run = |topo: Topology| {
            let mut sim = Simulator::new(
                topo,
                TrafficPattern::Convergecast { sink: 0, rate: 0.08 },
                SimConfig { seed, faults: plan, ..Default::default() },
            );
            sim.run(&mac, 200);
            let r = sim.report();
            (r.generated, r.delivered, r.link_drops, r.crashes, r.recoveries,
             r.retry_exhausted, r.crash_dropped, r.backlog)
        };
        prop_assert_eq!(run(topo.clone()), run(topo));
    }
}
