//! Golden equivalence fixtures for the slot-phase pipeline.
//!
//! The simulator refactor from one inlined `step()` into `phases/` modules
//! (with pluggable [`ChannelModel`]s and [`SlotObserver`]s) is required to
//! be behaviour-preserving: identical RNG draw order, identical reports.
//! These tests pin that invariant against *recorded* fixtures: each pinned
//! seed deterministically derives a full scenario — topology, schedule,
//! traffic pattern, fault plan, capture config, sync-miss probability,
//! battery — runs it, and fingerprints the resulting [`SimReport`] down to
//! the bit level (counters, per-node energy as f64 bits, latency stats,
//! per-link success counts, and every retained trace event).
//!
//! The fixture file was generated *before* the pipeline refactor (with the
//! sync-miss energy fix applied, which is the one documented behaviour
//! change of that PR) and is compared byte-for-byte ever since. Regenerate
//! deliberately with:
//!
//! ```text
//! TTDC_BLESS=1 cargo test -p ttdc-sim --test golden
//! ```
//!
//! [`ChannelModel`]: ttdc_sim::ChannelModel
//! [`SlotObserver`]: ttdc_sim::SlotObserver

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use ttdc_core::Schedule;
use ttdc_sim::{
    CaptureModel, CrashModel, FaultPlan, GilbertElliott, ScheduleMac, SimConfig, SimReport,
    Simulator, Topology, TrafficPattern,
};
use ttdc_util::BitSet;

/// Number of pinned scenarios; every seed in `0..GOLDEN_SEEDS` has a
/// recorded fixture, so any strategy over that range is fully covered.
const GOLDEN_SEEDS: u64 = 32;

const FIXTURE_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.txt");

/// Pinned drift + crash scenarios — every one keeps clock drift active, so
/// [`Simulator::run`] must take the dense fallback rather than the sparse
/// slot-plan path (verified in-test by comparing against a forced
/// [`Simulator::run_dense`]).
const DRIFT_SEEDS: u64 = 16;

const DRIFT_FIXTURE_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_drift.txt"
);

/// Runs the scenario derived from `seed` and fingerprints its report.
fn scenario_fingerprint(seed: u64) -> String {
    // Scenario derivation draws from its own stream; the simulation itself
    // is seeded separately so scenario shape and run randomness decouple.
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1CE);
    let n = rng.gen_range(4usize..12);

    // Topology: classic shapes, degree-capped random graphs, and geometric
    // deployments (the only family that supports physical capture).
    let (topo, positions) = match rng.gen_range(0u32..5) {
        0 => (Topology::ring(n), None),
        1 => (Topology::line(n), None),
        2 => (Topology::star(n), None),
        3 => {
            let tseed = rng.gen_range(0u64..1_000_000);
            let mut trng = SmallRng::seed_from_u64(tseed);
            (Topology::random_gnp_capped(n, 0.4, 4, &mut trng), None)
        }
        _ => {
            let tseed = rng.gen_range(0u64..1_000_000);
            let mut trng = SmallRng::seed_from_u64(tseed);
            let net = ttdc_sim::GeometricNetwork::random(n, 0.45, 4, &mut trng);
            let positions = net.positions().to_vec();
            (net.topology(), Some(positions))
        }
    };

    // A random periodic schedule: per slot, a transmitter mask and a
    // receiver mask disjoint from it (as in the engine proptests).
    let frame = rng.gen_range(1usize..5);
    let mut t = Vec::new();
    let mut r = Vec::new();
    for _ in 0..frame {
        let tm: u32 = rng.gen_range(1..(1u32 << n));
        let rm: u32 = rng.gen_range(0..(1u32 << n));
        t.push(BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)));
        r.push(BitSet::from_iter(
            n,
            (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0),
        ));
    }
    let mac = ScheduleMac::new("golden", Schedule::new(n, t, r));

    let pattern = match rng.gen_range(0u32..4) {
        0 => TrafficPattern::SaturatedBroadcast,
        1 => TrafficPattern::PoissonUnicast {
            rate: rng.gen_range(0.02..0.25),
        },
        2 => TrafficPattern::CbrUnicast {
            period: rng.gen_range(2u64..9),
        },
        _ => TrafficPattern::Convergecast {
            sink: 0,
            rate: rng.gen_range(0.02..0.15),
        },
    };

    // Fault plan: every axis independently active or off, including noop.
    let mut faults = FaultPlan::none();
    if rng.gen_bool(0.5) {
        faults = faults.with_per(rng.gen_range(0.0..0.6));
    }
    if rng.gen_bool(0.35) {
        faults = faults.with_burst(GilbertElliott::bursty(
            rng.gen_range(0.001..0.3),
            rng.gen_range(0.01..0.5),
        ));
    }
    if rng.gen_bool(0.35) {
        let mut crash = CrashModel::new(rng.gen_range(0.0..0.04), rng.gen_range(0.02..0.5));
        crash.persist_queue = rng.gen_bool(0.5);
        faults = faults.with_crash(crash);
    }
    if rng.gen_bool(0.3) {
        faults = faults.with_drift(rng.gen_range(0.0..0.3));
    }
    if rng.gen_bool(0.4) {
        faults = faults.with_max_retries(rng.gen_range(0u32..6));
    }

    let config = SimConfig {
        seed: rng.gen_range(0u64..1 << 20),
        miss_probability: if rng.gen_bool(0.4) {
            rng.gen_range(0.0..0.35)
        } else {
            0.0
        },
        schedule_aware_senders: rng.gen_bool(0.7),
        battery_capacity_mj: if rng.gen_bool(0.25) {
            Some(rng.gen_range(5.0..60.0))
        } else {
            None
        },
        trace_capacity: 64,
        faults,
        ..Default::default()
    };
    let slots = rng.gen_range(120u64..320);

    let mut sim = Simulator::new(topo, pattern, config);
    if let Some(positions) = positions {
        if rng.gen_bool(0.6) {
            sim.enable_capture(
                positions,
                CaptureModel {
                    ratio: rng.gen_range(1.2..3.0),
                },
            );
        }
    }
    sim.run(&mac, slots);
    fingerprint(&sim.report())
}

/// Runs the drift + crash scenario derived from `seed` through the
/// dispatching `run()` *and* the forced dense scan, asserts they agree,
/// and fingerprints the report. Clock drift is always on (and a crash
/// model always installed), so these scenarios exercise exactly the
/// sparse-ineligible corner the slot-plan dispatcher must refuse.
fn drift_scenario_fingerprint(seed: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDF1F);
    let n = rng.gen_range(4usize..12);
    let tseed = rng.gen_range(0u64..1_000_000);
    let mut trng = SmallRng::seed_from_u64(tseed);
    let topo = Topology::random_gnp_capped(n, 0.4, 4, &mut trng);

    let frame = rng.gen_range(1usize..5);
    let mut t = Vec::new();
    let mut r = Vec::new();
    for _ in 0..frame {
        let tm: u32 = rng.gen_range(1..(1u32 << n));
        let rm: u32 = rng.gen_range(0..(1u32 << n));
        t.push(BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)));
        r.push(BitSet::from_iter(
            n,
            (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0),
        ));
    }
    let mac = ScheduleMac::new("golden-drift", Schedule::new(n, t, r));

    let pattern = match rng.gen_range(0u32..3) {
        0 => TrafficPattern::PoissonUnicast {
            rate: rng.gen_range(0.02..0.25),
        },
        1 => TrafficPattern::SaturatedBroadcast,
        _ => TrafficPattern::Convergecast {
            sink: 0,
            rate: rng.gen_range(0.02..0.15),
        },
    };

    let mut crash = CrashModel::new(rng.gen_range(0.005..0.04), rng.gen_range(0.02..0.5));
    crash.persist_queue = rng.gen_bool(0.5);
    let mut faults = FaultPlan::none()
        .with_drift(rng.gen_range(0.01..0.3))
        .with_crash(crash);
    if rng.gen_bool(0.5) {
        faults = faults.with_per(rng.gen_range(0.0..0.5));
    }
    if rng.gen_bool(0.4) {
        faults = faults.with_max_retries(rng.gen_range(0u32..6));
    }
    assert!(faults.clock_drift > 0.0, "the family's defining trait");

    let config = SimConfig {
        seed: rng.gen_range(0u64..1 << 20),
        miss_probability: if rng.gen_bool(0.4) {
            rng.gen_range(0.0..0.35)
        } else {
            0.0
        },
        schedule_aware_senders: rng.gen_bool(0.7),
        trace_capacity: 64,
        faults,
        ..Default::default()
    };
    let slots = rng.gen_range(120u64..320);

    let mut dispatched = Simulator::new(topo.clone(), pattern, config);
    dispatched.run(&mac, slots);
    let fp = fingerprint(&dispatched.report());

    let mut forced = Simulator::new(topo, pattern, config);
    forced.run_dense(&mac, slots);
    assert_eq!(
        fp,
        fingerprint(&forced.report()),
        "seed {seed}: under clock drift, run() must take the dense fallback"
    );
    fp
}

/// A bit-exact, diffable text rendering of everything a report contains.
fn fingerprint(r: &SimReport) -> String {
    let mut s = String::new();
    writeln!(
        s,
        "counters: slots={} generated={} delivered={} hops={} collisions={} \
         undeliverable={} backlog={}",
        r.slots,
        r.generated,
        r.delivered,
        r.hop_deliveries,
        r.collisions,
        r.undeliverable,
        r.backlog
    )
    .unwrap();
    writeln!(
        s,
        "faults: link_drops={} crashes={} recoveries={} retry_exhausted={} crash_dropped={}",
        r.link_drops, r.crashes, r.recoveries, r.retry_exhausted, r.crash_dropped
    )
    .unwrap();
    writeln!(
        s,
        "battery: deaths={} first_death={:?}",
        r.deaths, r.first_death_slot
    )
    .unwrap();
    writeln!(
        s,
        "latency: count={} mean={:016x} max={:016x}",
        r.latency.count(),
        r.latency.mean().to_bits(),
        r.latency.max().to_bits()
    )
    .unwrap();
    writeln!(
        s,
        "hist: count={} p50={:?} p99={:?} max={}",
        r.latency_hist.count(),
        r.latency_hist.p50(),
        r.latency_hist.p99(),
        r.latency_hist.max()
    )
    .unwrap();
    for v in 0..r.energy.consumed_mj.len() {
        writeln!(
            s,
            "energy[{v}]: mj={:016x} tx={} listen={} sleep={}",
            r.energy.consumed_mj[v].to_bits(),
            r.energy.tx_slots[v],
            r.energy.listen_slots[v],
            r.energy.sleep_slots[v]
        )
        .unwrap();
    }
    for ((x, y), c) in &r.link_success {
        writeln!(s, "link[{x}->{y}]={c}").unwrap();
    }
    for (slot, ev) in r.trace.events() {
        writeln!(s, "trace[{slot}] {ev:?}").unwrap();
    }
    s
}

/// Parses a fixture file into per-seed fingerprints.
fn load_fixtures_from(path: &str) -> Vec<(u64, String)> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden fixtures at {path} ({e}); bless with TTDC_BLESS=1")
    });
    let mut out = Vec::new();
    for block in text.split("=== seed ").skip(1) {
        let (head, body) = block.split_once('\n').expect("seed header line");
        out.push((head.trim().parse().expect("seed number"), body.to_string()));
    }
    out
}

fn bless_requested() -> bool {
    std::env::var_os("TTDC_BLESS").is_some()
}

/// Writes (bless) or verifies one fixture family.
fn check_family(path: &str, seeds: u64, fingerprint_of: impl Fn(u64) -> String) {
    if bless_requested() {
        let mut text = String::new();
        for seed in 0..seeds {
            writeln!(text, "=== seed {seed}").unwrap();
            text.push_str(&fingerprint_of(seed));
        }
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, text).unwrap();
        eprintln!("blessed {seeds} golden fixtures at {path}");
        return;
    }
    let fixtures = load_fixtures_from(path);
    assert_eq!(fixtures.len() as u64, seeds, "fixture count in {path}");
    for (seed, expected) in fixtures {
        let got = fingerprint_of(seed);
        assert_eq!(
            got, expected,
            "seed {seed}: pipeline output diverged from the fixture in {path}"
        );
    }
}

/// Exhaustive check of every pinned seed (and the bless entry point).
#[test]
fn golden_fixtures_cover_every_pinned_seed() {
    check_family(FIXTURE_PATH, GOLDEN_SEEDS, scenario_fingerprint);
}

/// The drift + crash family: scenarios the sparse dispatcher must refuse.
/// Each seed also cross-checks `run()` against a forced `run_dense()`
/// inside `drift_scenario_fingerprint`, so a dispatcher that wrongly took
/// the sparse path under drift fails here even before the fixture diff.
#[test]
fn drift_crash_fixtures_pin_the_dense_fallback() {
    check_family(DRIFT_FIXTURE_PATH, DRIFT_SEEDS, drift_scenario_fingerprint);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property form of the same invariant: any scenario drawn from the
    /// pinned pool reproduces its pre-refactor fixture exactly — trace
    /// events, energy totals, and all.
    #[test]
    fn pipeline_report_matches_prerefactor_fixture(seed in 0u64..GOLDEN_SEEDS) {
        if bless_requested() {
            return Ok(()); // fixtures are being rewritten by the bless test
        }
        let fixtures = load_fixtures_from(FIXTURE_PATH);
        let expected = &fixtures
            .iter()
            .find(|(s, _)| *s == seed)
            .expect("every pinned seed has a fixture")
            .1;
        let got = scenario_fingerprint(seed);
        prop_assert_eq!(&got, expected, "seed {}", seed);
    }
}
