//! Verifier-engine speedup trajectory: times the naive from-scratch
//! Requirement-1 scan against the incremental subset engine
//! (revolving-door deltas + `CoverCounter` + witness-safe pruning) over the
//! `(n, D)` sweep points the experiments exercise, asserts that naive and
//! incremental agree on **every** benchmarked case — verdict and witness —
//! and that the incremental verifier returns the identical answer at 1, 2,
//! and 4 pool threads (the deterministic-witness rule). Writes
//! `BENCH_verify.json` at the repo root, same shape as
//! `BENCH_parallel.json`.
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_verify`.
//! Pass `--smoke` (CI) for a single timing iteration: the identity
//! assertions still run in full, only the timing fidelity drops, and the
//! JSON is not rewritten.

use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_combinatorics::{greedy_cff, greedy_cff_reference, GreedyConfig};
use ttdc_core::requirements::{requirement1_violation, requirement1_violation_naive, Violation};
use ttdc_core::tsma::build_polynomial;
use ttdc_core::Schedule;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// `(label, schedule, D)` sweep points: the seed-era experiment grid
/// (transparent polynomial schedules, largest point `n = 36, D = 2`) plus
/// one beyond-guarantee case so the witness comparison is non-trivial.
fn sweep_points() -> Vec<(String, Schedule, usize)> {
    let mut points: Vec<(String, Schedule, usize)> = [(16usize, 2usize), (25, 2), (36, 2)]
        .into_iter()
        .map(|(n, d)| {
            (
                format!("requirement1/n{n}_d{d}"),
                build_polynomial(n, d).schedule,
                d,
            )
        })
        .collect();
    // D = 3 on a schedule only guaranteed for D = 2: a real violation, so
    // the identity check compares concrete witnesses, not just `None`s.
    points.push((
        "requirement1/n9_d3_violating".to_string(),
        build_polynomial(9, 2).schedule,
        3,
    ));
    points
}

/// Median wall time of `iters` calls (after one warm-up), plus the result.
fn measure<D>(iters: usize, work: impl Fn() -> D) -> (f64, D) {
    let result = work();
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[iters / 2], result)
}

fn run_sweep(name: &str, s: &Schedule, d: usize, iters: usize) -> Value {
    eprintln!("sweep {name}:");
    let (naive_ms, naive) = measure(iters, || requirement1_violation_naive(s, d));

    let mut runs: Vec<Value> = Vec::new();
    let mut single_thread_speedup = 0.0;
    for threads in THREAD_COUNTS {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool construction cannot fail");
        let (ms, incremental): (f64, Option<Violation>) =
            measure(iters, || pool.install(|| requirement1_violation(s, d)));
        assert_eq!(
            incremental, naive,
            "{name}: incremental at {threads} threads disagrees with naive"
        );
        let speedup = naive_ms / ms;
        if threads == 1 {
            single_thread_speedup = speedup;
        }
        eprintln!("  threads={threads}: {ms:.3} ms  ({speedup:.2}x vs naive {naive_ms:.3} ms)");
        runs.push(json!({
            "threads": threads,
            "median_ms": ms,
            "speedup_vs_naive": speedup,
        }));
    }
    json!({
        "name": name,
        "iterations": iters,
        "violation_found": naive.is_some(),
        "verdicts_and_witnesses_identical": true,
        "results_identical_across_thread_counts": true,
        "naive_median_ms": naive_ms,
        "speedup_single_thread": single_thread_speedup,
        "runs": runs,
    })
}

/// Times the whole greedy-CFF run with the engine-backed acceptance test
/// against the from-scratch reference, asserting the families produced are
/// bit-identical (single-threaded on both sides — the greedy is sequential).
fn run_greedy_sweep(ground: usize, n: usize, d: usize, iters: usize) -> Value {
    let name = format!("greedy_cff/g{ground}_n{n}_d{d}");
    eprintln!("sweep {name}:");
    let cfg = GreedyConfig::new(ground, n, d);
    let (ref_ms, reference) = measure(iters, || greedy_cff_reference(&cfg));
    let (eng_ms, engine) = measure(iters, || greedy_cff(&cfg));
    let (reference, engine) = (
        reference.expect("reference greedy must succeed at sweep points"),
        engine.expect("engine greedy must succeed at sweep points"),
    );
    assert_eq!(
        reference.blocks(),
        engine.blocks(),
        "{name}: engine-backed greedy diverged from reference"
    );
    let speedup = ref_ms / eng_ms;
    eprintln!("  engine: {eng_ms:.3} ms  ({speedup:.2}x vs reference {ref_ms:.3} ms)");
    json!({
        "name": name,
        "iterations": iters,
        "blocks_identical": true,
        "reference_median_ms": ref_ms,
        "engine_median_ms": eng_ms,
        "speedup_single_thread": speedup,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 7 };

    let mut sweeps: Vec<Value> = sweep_points()
        .iter()
        .map(|(name, s, d)| run_sweep(name, s, *d, iters))
        .collect();
    for (ground, n, d) in [(40usize, 12usize, 3usize), (60, 20, 4), (130, 24, 4)] {
        sweeps.push(run_greedy_sweep(ground, n, d, iters));
    }

    if smoke {
        eprintln!("smoke mode: identity checks passed on every sweep point; JSON not rewritten");
        return;
    }

    let host_threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let doc = json!({
        "description": "naive-vs-incremental verifier trajectory: from-scratch union rebuilds vs the revolving-door subset engine (CoverCounter + witness-safe pruning), by (n, D)",
        "host_available_parallelism": host_threads as u64,
        "note": "speedup_single_thread isolates the per-subset algorithmic win on a 1-thread pool; multi-thread rows add the deterministic parallel outer loop on top (~1.0x extra on a 1-core host)",
        "sweeps": sweeps,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_verify.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_verify.json");
    eprintln!("wrote {path}");
}
