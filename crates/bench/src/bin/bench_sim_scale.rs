//! Simulator scaling: dense all-nodes scan vs the sleep-sparse slot-plan
//! path vs the event-driven time-skipping engine, by network size.
//!
//! For each `n` the same duty-cycled scenario runs through
//! `Simulator::run_dense` — the historical O(n)-per-slot scan — and through
//! `Simulator::run`, which dispatches to the sparse pipeline iterating only
//! the slot's scheduled rosters. The schedule is a round-robin duty cycle
//! with frame `L = n / 4`: slot `i` wakes transmitter group `i` and
//! listener group `(i + 1) mod L` (four nodes each), so the awake roster is
//! eight nodes per slot *regardless of `n`* — the regime the sparse path is
//! built for, and the one duty-cycled WSN schedules actually produce (most
//! nodes asleep in most slots).
//!
//! The two reports are asserted **equal in full** (every counter, per-node
//! energy, latency bits, trace) at every sweep point before any timing is
//! trusted; `results_identical` in the JSON records that the assertion ran.
//! The headline claims pinned by `BENCH_sim_scale.json`:
//!
//! * sparse per-slot cost stays near-flat as `n` grows: the phase work
//!   tracks the awake roster (which the schedule caps, not the node
//!   count); all that remains per sleeping node is the memory-bound bulk
//!   sleep-charge sweep, a few ns per node versus the full per-node
//!   pipeline the dense scan pays;
//! * sparse-vs-dense speedup is at least 5× from `n = 256` up (asserted).
//!
//! The **low-traffic family** measures the time-skipping engine
//! (`Simulator::run_skipping`) against the forced sparse path on the
//! workload it exists for: a fully duty-cycled schedule (frame `L = n`,
//! one transmitter and one listener per slot over a perfect-matching
//! topology) under CBR traffic with per-node arrival ~10⁻⁴/slot at
//! `n = 64`, scaled so network load stays constant. Almost every slot is
//! boring — no backlog, no generation — and the calendar jumps straight
//! over them. Reports are asserted identical in full at every point;
//! skip-vs-sparse speedup is at least 10× at `n = 1024` (asserted), and a
//! separate 10⁸-slot horizon row pins "a hundred million slots in
//! seconds".
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_sim_scale`.
//! Pass `--smoke` (CI) for a single timing iteration on the smaller
//! points: the identity assertions still run in full, only the timing
//! fidelity drops, and the JSON is not rewritten.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_core::Schedule;
use ttdc_sim::{
    MacProtocol, ScheduleMac, SimConfig, SimReport, Simulator, Topology, TrafficPattern,
};
use ttdc_util::BitSet;

/// Median wall time of `iters` calls (after one warm-up), plus the result.
fn measure<D>(iters: usize, work: impl Fn() -> D) -> (f64, D) {
    let result = work();
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[iters / 2], result)
}

/// Round-robin duty-cycled MAC over `n` nodes: frame `L = n / 4`; in slot
/// `i` group `i` (`{v : v mod L == i}`, four nodes) transmits and group
/// `(i + 1) mod L` listens. Awake nodes per slot is eight, flat in `n`.
fn duty_cycled_mac(n: usize) -> ScheduleMac {
    let frame = n / 4;
    assert!(frame >= 2, "need at least two disjoint groups");
    let group = |g: usize| BitSet::from_iter(n, (0..n).filter(|v| v % frame == g));
    let t = (0..frame).map(group).collect();
    let r = (0..frame).map(|i| group((i + 1) % frame)).collect();
    ScheduleMac::new("round-robin-dc", Schedule::new(n, t, r))
}

fn report(topo: &Topology, mac: &dyn MacProtocol, slots: u64, dense: bool) -> SimReport {
    let mut sim = Simulator::new(
        topo.clone(),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 11,
            ..Default::default()
        },
    );
    if dense {
        sim.run_dense(mac, slots);
    } else {
        sim.run(mac, slots);
    }
    sim.report()
}

/// Mean awake (scheduled transmitter or listener) nodes per frame slot —
/// the quantity the sparse path's cost actually tracks.
fn mean_awake_per_slot(mac: &dyn MacProtocol, n: usize) -> f64 {
    let frame = mac.frame_length() as u64;
    let awake: usize = (0..frame)
        .map(|s| {
            (0..n)
                .filter(|&v| mac.may_transmit(v, s) || mac.may_receive(v, s))
                .count()
        })
        .sum();
    awake as f64 / frame as f64
}

fn run_point(n: usize, slots: u64, iters: usize) -> (Value, f64) {
    let mut rng = SmallRng::seed_from_u64(3);
    let topo = Topology::random_gnp_capped(n, 0.4, 4, &mut rng);
    let mac = duty_cycled_mac(n);
    eprintln!(
        "point n={n}: frame={} mean_awake/slot={:.1}",
        mac.frame_length(),
        mean_awake_per_slot(&mac, n)
    );

    let (dense_ms, dense_report) = measure(iters, || report(&topo, &mac, slots, true));
    let (sparse_ms, sparse_report) = measure(iters, || report(&topo, &mac, slots, false));
    assert_eq!(
        sparse_report, dense_report,
        "n={n}: sparse and dense reports must be identical"
    );
    let speedup = dense_ms / sparse_ms;
    eprintln!(
        "  dense {dense_ms:.2} ms, sparse {sparse_ms:.2} ms over {slots} slots \
         ({speedup:.2}x, identical reports)"
    );
    let row = json!({
        "n": n,
        "frame_length": mac.frame_length(),
        "mean_awake_per_slot": mean_awake_per_slot(&mac, n),
        "slots": slots,
        "iterations": iters,
        "dense_median_ms": dense_ms,
        "sparse_median_ms": sparse_ms,
        "dense_us_per_slot": dense_ms * 1e3 / slots as f64,
        "sparse_us_per_slot": sparse_ms * 1e3 / slots as f64,
        "speedup_sparse_vs_dense": speedup,
        "results_identical": true,
    });
    (row, speedup)
}

/// Perfect-matching topology: `n/2` disjoint pairs (`v` — `v ^ 1`).
/// Degree 1 everywhere, so CBR unicast destinations are deterministic and
/// slot `i`'s lone transmitter can never collide at its partner.
fn matching_topo(n: usize) -> Topology {
    assert!(n.is_multiple_of(2), "matching needs an even n");
    let mut topo = Topology::empty(n);
    for v in (0..n).step_by(2) {
        topo.add_edge(v, v + 1);
    }
    topo
}

/// Fully duty-cycled matching MAC: frame `L = n`; in slot `i` only node
/// `i` transmits and only its partner `i ^ 1` listens. One transmitter,
/// one listener, `n - 2` sleepers — the sparsest schedule the simulator
/// can express short of an empty frame.
fn matching_mac(n: usize) -> ScheduleMac {
    let t = (0..n).map(|i| BitSet::from_iter(n, [i])).collect();
    let r = (0..n).map(|i| BitSet::from_iter(n, [i ^ 1])).collect();
    ScheduleMac::new("matching-dc", Schedule::new(n, t, r))
}

/// CBR period giving per-node arrival `~1e-4`/slot at `n = 64`, scaled
/// linearly so the *network-wide* arrival rate stays flat as `n` grows.
fn low_traffic_period(n: usize) -> u64 {
    10_000 * n as u64 / 64
}

fn low_traffic_report(n: usize, slots: u64, skip: bool) -> SimReport {
    let topo = matching_topo(n);
    let mac = matching_mac(n);
    let mut sim = Simulator::new(
        topo,
        TrafficPattern::CbrUnicast {
            period: low_traffic_period(n),
        },
        SimConfig {
            seed: 11,
            ..Default::default()
        },
    );
    if skip {
        sim.run_skipping(&mac, slots);
    } else {
        sim.run_sparse(&mac, slots);
    }
    sim.report()
}

fn run_low_traffic_point(n: usize, slots: u64, iters: usize) -> (Value, f64) {
    let period = low_traffic_period(n);
    eprintln!(
        "low-traffic point n={n}: frame={n} period={period} \
         (per-node arrival {:.1e}/slot)",
        1.0 / period as f64
    );
    let (sparse_ms, sparse_report) = measure(iters, || low_traffic_report(n, slots, false));
    let (skip_ms, skip_report) = measure(iters, || low_traffic_report(n, slots, true));
    assert_eq!(
        skip_report, sparse_report,
        "n={n}: skipping and sparse reports must be identical"
    );
    let speedup = sparse_ms / skip_ms;
    eprintln!(
        "  sparse {sparse_ms:.2} ms, skip {skip_ms:.2} ms over {slots} slots \
         ({speedup:.2}x, identical reports)"
    );
    let row = json!({
        "n": n,
        "frame_length": n,
        "cbr_period": period,
        "slots": slots,
        "iterations": iters,
        "sparse_median_ms": sparse_ms,
        "skip_median_ms": skip_ms,
        "sparse_us_per_slot": sparse_ms * 1e3 / slots as f64,
        "skip_us_per_slot": skip_ms * 1e3 / slots as f64,
        "speedup_skip_vs_sparse": speedup,
        "results_identical": true,
    });
    (row, speedup)
}

/// One skip-only timed run at a horizon far beyond what the slot-by-slot
/// paths can cover in a benchmark: pins "10⁸ slots in seconds" in the
/// JSON. (A cross-check against sparse at this length would take hours;
/// the identity rows plus the proptest suite carry that guarantee.)
fn run_horizon_row(n: usize, slots: u64) -> Value {
    eprintln!("horizon point n={n}: {slots} slots, skip engine only");
    let t0 = Instant::now();
    let report = low_traffic_report(n, slots, true);
    let secs = t0.elapsed().as_secs_f64();
    let delivered = report.delivered;
    eprintln!(
        "  {secs:.2} s wall ({:.1}M slots/s), {delivered} packets delivered",
        slots as f64 / secs / 1e6
    );
    json!({
        "n": n,
        "frame_length": n,
        "cbr_period": low_traffic_period(n),
        "slots": slots,
        "skip_wall_s": secs,
        "slots_per_sec": slots as f64 / secs,
        "packets_delivered": delivered,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, slots, iters): (&[usize], u64, usize) = if smoke {
        (&[64, 256], 800, 1)
    } else {
        (&[64, 256, 1024], 4_000, 5)
    };

    let (low_slots, horizon_slots) = if smoke {
        (50_000, None)
    } else {
        (1_000_000, Some(100_000_000u64))
    };

    let points: Vec<(usize, Value, f64)> = sizes
        .iter()
        .map(|&n| {
            let (row, speedup) = run_point(n, slots, iters);
            (n, row, speedup)
        })
        .collect();
    let low_points: Vec<(usize, Value, f64)> = sizes
        .iter()
        .map(|&n| {
            let (row, speedup) = run_low_traffic_point(n, low_slots, iters);
            (n, row, speedup)
        })
        .collect();

    if smoke {
        eprintln!("smoke mode: identity checks passed on every point; JSON not rewritten");
        return;
    }

    for &(n, _, speedup) in &points {
        assert!(
            n < 256 || speedup >= 5.0,
            "n={n}: sparse speedup {speedup:.2}x below the 5x floor"
        );
    }
    for &(n, _, speedup) in &low_points {
        assert!(
            n < 1024 || speedup >= 10.0,
            "n={n}: skip speedup {speedup:.2}x below the 10x floor"
        );
    }
    let rows: Vec<Value> = points.into_iter().map(|(_, row, _)| row).collect();
    let low_rows: Vec<Value> = low_points.into_iter().map(|(_, row, _)| row).collect();
    let horizon = horizon_slots.map(|h| run_horizon_row(1024, h));

    let doc = json!({
        "description": "sleep-sparse simulation scaling: dense all-nodes slot scan vs precomputed slot-plan roster iteration, by network size (round-robin duty-cycled schedule with frame n/4 and 8 awake nodes per slot, saturated broadcast, single thread)",
        "note": "dense per-slot cost grows with n (full per-node pipeline); sparse phase work tracks mean_awake_per_slot, which the duty-cycled schedule caps at 8, leaving only the memory-bound bulk sleep-charge sweep (a few ns per sleeping node) to grow with n. results_identical means the full SimReport (counters, per-node energy, latency bits, trace) matched between the two paths at that point.",
        "rows": rows,
        "low_traffic_note": "event-driven time-skipping vs forced sparse on a fully duty-cycled matching schedule (frame L = n, 1 tx + 1 rx per slot) under CBR unicast with per-node arrival ~1e-4/slot at n=64 (period scaled with n so network load is flat). Sparse pays the per-slot CBR gate over all n nodes; the skip engine's calendar jumps straight between generation and backlog slots, touching only the slot's lone listener in between. results_identical is the same full-SimReport assertion as above, run at every point.",
        "low_traffic_rows": low_rows,
        "horizon_row": horizon.unwrap_or(Value::Null),
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_scale.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_sim_scale.json");
    eprintln!("wrote {path}");
}
