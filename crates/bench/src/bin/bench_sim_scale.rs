//! Sleep-sparse simulator scaling: dense all-nodes scan vs the slot-plan
//! path, by network size.
//!
//! For each `n` the same duty-cycled scenario runs through
//! `Simulator::run_dense` — the historical O(n)-per-slot scan — and through
//! `Simulator::run`, which dispatches to the sparse pipeline iterating only
//! the slot's scheduled rosters. The schedule is a round-robin duty cycle
//! with frame `L = n / 4`: slot `i` wakes transmitter group `i` and
//! listener group `(i + 1) mod L` (four nodes each), so the awake roster is
//! eight nodes per slot *regardless of `n`* — the regime the sparse path is
//! built for, and the one duty-cycled WSN schedules actually produce (most
//! nodes asleep in most slots).
//!
//! The two reports are asserted **equal in full** (every counter, per-node
//! energy, latency bits, trace) at every sweep point before any timing is
//! trusted; `results_identical` in the JSON records that the assertion ran.
//! The headline claims pinned by `BENCH_sim_scale.json`:
//!
//! * sparse per-slot cost stays near-flat as `n` grows: the phase work
//!   tracks the awake roster (which the schedule caps, not the node
//!   count); all that remains per sleeping node is the memory-bound bulk
//!   sleep-charge sweep, a few ns per node versus the full per-node
//!   pipeline the dense scan pays;
//! * sparse-vs-dense speedup is at least 5× from `n = 256` up (asserted).
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_sim_scale`.
//! Pass `--smoke` (CI) for a single timing iteration on the smaller
//! points: the identity assertions still run in full, only the timing
//! fidelity drops, and the JSON is not rewritten.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_core::Schedule;
use ttdc_sim::{
    MacProtocol, ScheduleMac, SimConfig, SimReport, Simulator, Topology, TrafficPattern,
};
use ttdc_util::BitSet;

/// Median wall time of `iters` calls (after one warm-up), plus the result.
fn measure<D>(iters: usize, work: impl Fn() -> D) -> (f64, D) {
    let result = work();
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[iters / 2], result)
}

/// Round-robin duty-cycled MAC over `n` nodes: frame `L = n / 4`; in slot
/// `i` group `i` (`{v : v mod L == i}`, four nodes) transmits and group
/// `(i + 1) mod L` listens. Awake nodes per slot is eight, flat in `n`.
fn duty_cycled_mac(n: usize) -> ScheduleMac {
    let frame = n / 4;
    assert!(frame >= 2, "need at least two disjoint groups");
    let group = |g: usize| BitSet::from_iter(n, (0..n).filter(|v| v % frame == g));
    let t = (0..frame).map(group).collect();
    let r = (0..frame).map(|i| group((i + 1) % frame)).collect();
    ScheduleMac::new("round-robin-dc", Schedule::new(n, t, r))
}

fn report(topo: &Topology, mac: &dyn MacProtocol, slots: u64, dense: bool) -> SimReport {
    let mut sim = Simulator::new(
        topo.clone(),
        TrafficPattern::SaturatedBroadcast,
        SimConfig {
            seed: 11,
            ..Default::default()
        },
    );
    if dense {
        sim.run_dense(mac, slots);
    } else {
        sim.run(mac, slots);
    }
    sim.report()
}

/// Mean awake (scheduled transmitter or listener) nodes per frame slot —
/// the quantity the sparse path's cost actually tracks.
fn mean_awake_per_slot(mac: &dyn MacProtocol, n: usize) -> f64 {
    let frame = mac.frame_length() as u64;
    let awake: usize = (0..frame)
        .map(|s| {
            (0..n)
                .filter(|&v| mac.may_transmit(v, s) || mac.may_receive(v, s))
                .count()
        })
        .sum();
    awake as f64 / frame as f64
}

fn run_point(n: usize, slots: u64, iters: usize) -> (Value, f64) {
    let mut rng = SmallRng::seed_from_u64(3);
    let topo = Topology::random_gnp_capped(n, 0.4, 4, &mut rng);
    let mac = duty_cycled_mac(n);
    eprintln!(
        "point n={n}: frame={} mean_awake/slot={:.1}",
        mac.frame_length(),
        mean_awake_per_slot(&mac, n)
    );

    let (dense_ms, dense_report) = measure(iters, || report(&topo, &mac, slots, true));
    let (sparse_ms, sparse_report) = measure(iters, || report(&topo, &mac, slots, false));
    assert_eq!(
        sparse_report, dense_report,
        "n={n}: sparse and dense reports must be identical"
    );
    let speedup = dense_ms / sparse_ms;
    eprintln!(
        "  dense {dense_ms:.2} ms, sparse {sparse_ms:.2} ms over {slots} slots \
         ({speedup:.2}x, identical reports)"
    );
    let row = json!({
        "n": n,
        "frame_length": mac.frame_length(),
        "mean_awake_per_slot": mean_awake_per_slot(&mac, n),
        "slots": slots,
        "iterations": iters,
        "dense_median_ms": dense_ms,
        "sparse_median_ms": sparse_ms,
        "dense_us_per_slot": dense_ms * 1e3 / slots as f64,
        "sparse_us_per_slot": sparse_ms * 1e3 / slots as f64,
        "speedup_sparse_vs_dense": speedup,
        "results_identical": true,
    });
    (row, speedup)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, slots, iters): (&[usize], u64, usize) = if smoke {
        (&[64, 256], 800, 1)
    } else {
        (&[64, 256, 1024], 4_000, 5)
    };

    let points: Vec<(usize, Value, f64)> = sizes
        .iter()
        .map(|&n| {
            let (row, speedup) = run_point(n, slots, iters);
            (n, row, speedup)
        })
        .collect();

    if smoke {
        eprintln!("smoke mode: identity checks passed on every point; JSON not rewritten");
        return;
    }

    for &(n, _, speedup) in &points {
        assert!(
            n < 256 || speedup >= 5.0,
            "n={n}: sparse speedup {speedup:.2}x below the 5x floor"
        );
    }
    let rows: Vec<Value> = points.into_iter().map(|(_, row, _)| row).collect();

    let doc = json!({
        "description": "sleep-sparse simulation scaling: dense all-nodes slot scan vs precomputed slot-plan roster iteration, by network size (round-robin duty-cycled schedule with frame n/4 and 8 awake nodes per slot, saturated broadcast, single thread)",
        "note": "dense per-slot cost grows with n (full per-node pipeline); sparse phase work tracks mean_awake_per_slot, which the duty-cycled schedule caps at 8, leaving only the memory-bound bulk sleep-charge sweep (a few ns per sleeping node) to grow with n. results_identical means the full SimReport (counters, per-node energy, latency bits, trace) matched between the two paths at that point.",
        "rows": rows,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim_scale.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_sim_scale.json");
    eprintln!("wrote {path}");
}
