//! Branch-and-bound synthesizer trajectory: a bound/pruning ablation
//! ladder (ceiling-only → +matching → +dominance → full default search)
//! against the same search with everything disabled (depth-bounded
//! exhaustive enumeration), at small parameter points where the
//! exhaustive run is still checkable. Every rung of the ladder is
//! asserted to return the *identical* `(len, lex)` winner — not just the
//! same optimum length — and the full-search winner additionally passes
//! the naive Requirement-3 oracle. Each row reports nodes/sec, prune
//! rate, the pruned-vs-exhaustive speedup, and the node-count reduction
//! of the full search relative to the ceiling-only baseline (the PR 9
//! search). Writes `BENCH_synth.json` at the repo root, same shape as
//! `BENCH_verify.json`.
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_synth`.
//! Pass `--smoke` (CI) for a single timing iteration: the identity
//! assertions still run in full, only the timing fidelity drops, and the
//! JSON is not rewritten.

use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_core::requirements::requirement3_violation_naive;
use ttdc_core::synth::demands::{CandidateSpace, DemandSpace};
use ttdc_core::synth::search::{minimum_cover, BoundKind, SearchOptions, SearchStats};
use ttdc_core::synth::SynthProblem;

/// Small exhaustively-checkable parameter points.
const POINTS: &[(usize, usize, usize, usize)] = &[
    (5, 1, 1, 2),
    (5, 2, 1, 2),
    (5, 1, 2, 2),
    (5, 3, 1, 2),
    (5, 2, 2, 2),
];

/// The ablation ladder, weakest first. The first rung reproduces the
/// PR 9 search (ceiling bound, no dominance, no lex pruning); the last
/// is `SearchOptions::default()`.
fn ladder() -> Vec<(&'static str, SearchOptions)> {
    let ceiling = SearchOptions {
        bound: BoundKind::Ceiling,
        dominance: false,
        lex_prune: false,
        ..SearchOptions::default()
    };
    vec![
        ("ceiling", ceiling),
        (
            "+matching",
            SearchOptions {
                bound: BoundKind::Matching,
                ..ceiling
            },
        ),
        (
            "+dominance",
            SearchOptions {
                bound: BoundKind::Matching,
                dominance: true,
                ..ceiling
            },
        ),
        ("full", SearchOptions::default()),
    ]
}

/// Median wall time of `iters` calls (after one warm-up), plus the result.
fn measure<D>(iters: usize, work: impl Fn() -> D) -> (f64, D) {
    let result = work();
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[iters / 2], result)
}

fn run_point(n: usize, d: usize, at: usize, ar: usize, iters: usize) -> Value {
    let name = format!("synth/n{n}_d{d}_at{at}_ar{ar}");
    eprintln!("sweep {name}:");
    let p = SynthProblem::new(n, d, at, ar);
    let space = DemandSpace::new(p.n, p.d);
    let cands = CandidateSpace::new(&space, p.alpha_t, p.alpha_r);
    let exhaustive_opts = SearchOptions {
        prune: false,
        dominance: false,
        lex_prune: false,
        symmetry: false,
        sub_symmetry: false,
        ..SearchOptions::default()
    };
    // A 1-thread pool isolates the algorithmic win from parallel fan-out.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool construction cannot fail");
    let run = |opts: &SearchOptions| pool.install(|| minimum_cover(&space, &cands, opts));

    let (exhaustive_ms, (exhaustive_sol, exhaustive_stats)): (f64, (_, SearchStats)) =
        measure(iters, || run(&exhaustive_opts));
    assert!(
        exhaustive_stats.exact,
        "{name}: exhaustive search must run to completion"
    );

    let mut ablation: Vec<Value> = Vec::new();
    let mut ceiling_nodes = 0u64;
    let mut full: Option<(f64, SearchStats)> = None;
    for (label, opts) in ladder() {
        let (ms, (sol, stats)) = measure(iters, || run(&opts));
        assert!(stats.exact, "{name}/{label}: search must run to completion");
        assert_eq!(
            sol.slots, exhaustive_sol.slots,
            "{name}/{label}: winner differs from the exhaustive search"
        );
        if label == "ceiling" {
            ceiling_nodes = stats.nodes;
        }
        eprintln!(
            "  {label:<10} {:>9} nodes / {ms:>9.3} ms  ({})",
            stats.nodes,
            opts.config_string(),
        );
        ablation.push(json!({
            "config": label,
            "search": opts.config_string(),
            "nodes": stats.nodes,
            "pruned": stats.pruned,
            "median_ms": ms,
            "results_identical": true,
            "node_reduction_vs_ceiling": ceiling_nodes as f64 / stats.nodes as f64,
        }));
        if label == "full" {
            full = Some((ms, stats));
        }
    }
    let (pruned_ms, pruned_stats) = full.expect("ladder ends with the full search");

    let schedule = cands.schedule(p.n, &exhaustive_sol.slots);
    assert!(
        requirement3_violation_naive(&schedule, p.d).is_none(),
        "{name}: optimum fails the naive Requirement-3 oracle"
    );
    let speedup_time = exhaustive_ms / pruned_ms;
    let speedup_nodes = exhaustive_stats.nodes as f64 / pruned_stats.nodes as f64;
    let prune_rate = pruned_stats.pruned as f64 / pruned_stats.nodes as f64;
    let nodes_per_sec = pruned_stats.nodes as f64 / (pruned_ms / 1e3);
    let reduction = ceiling_nodes as f64 / pruned_stats.nodes as f64;
    eprintln!(
        "  optimum L={}: full {} nodes / {pruned_ms:.3} ms, exhaustive {} nodes / \
         {exhaustive_ms:.3} ms  ({speedup_time:.1}x time, {speedup_nodes:.1}x nodes, \
         {reduction:.1}x vs ceiling)",
        exhaustive_sol.slots.len(),
        pruned_stats.nodes,
        exhaustive_stats.nodes,
    );
    json!({
        "name": name,
        "iterations": iters,
        "optimum_frame_length": exhaustive_sol.slots.len() as u64,
        "results_identical": true,
        "pruned_nodes": pruned_stats.nodes,
        "exhaustive_nodes": exhaustive_stats.nodes,
        "pruned_median_ms": pruned_ms,
        "exhaustive_median_ms": exhaustive_ms,
        "prune_rate": prune_rate,
        "nodes_per_sec": nodes_per_sec,
        "speedup_single_thread": speedup_time,
        "speedup_nodes": speedup_nodes,
        "node_reduction_vs_ceiling": reduction,
        "root_branches_after_symmetry": pruned_stats.root_branches,
        "root_branches_total": pruned_stats.root_branches_total,
        "ablation": ablation,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 7 };

    let sweeps: Vec<Value> = POINTS
        .iter()
        .map(|&(n, d, at, ar)| run_point(n, d, at, ar, iters))
        .collect();

    let min_reduction = sweeps
        .iter()
        .filter_map(|s| s.get("node_reduction_vs_ceiling")?.as_f64())
        .fold(f64::INFINITY, f64::min);
    eprintln!("minimum full-vs-ceiling node reduction across points: {min_reduction:.1}x");

    if smoke {
        eprintln!("smoke mode: identity checks passed on every point; JSON not rewritten");
        return;
    }

    let host_threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let doc = json!({
        "description": "branch-and-bound schedule synthesis: bound/pruning ablation ladder (ceiling -> +matching -> +dominance -> full) vs depth-bounded exhaustive enumeration, by (n, D, alpha_T, alpha_R)",
        "host_available_parallelism": host_threads as u64,
        "note": "all searches run on a 1-thread pool; every ladder rung is asserted to return the identical (len, lex) winner as the exhaustive search, which is re-verified by the naive Requirement-3 oracle",
        "sweeps": sweeps,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_synth.json");
    eprintln!("wrote {path}");
}
