//! Branch-and-bound synthesizer trajectory: admissible pruning + root
//! symmetry reduction vs the same search with both disabled (depth-bounded
//! exhaustive enumeration), at small parameter points where the exhaustive
//! run is still checkable. Every row asserts the two searches agree on the
//! optimum frame length and that the pruned winner passes the naive
//! Requirement-3 oracle, then reports nodes/sec, prune rate, and the
//! pruned-vs-exhaustive speedup. Writes `BENCH_synth.json` at the repo
//! root, same shape as `BENCH_verify.json`.
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_synth`.
//! Pass `--smoke` (CI) for a single timing iteration: the identity
//! assertions still run in full, only the timing fidelity drops, and the
//! JSON is not rewritten.

use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_core::requirements::requirement3_violation_naive;
use ttdc_core::synth::demands::{CandidateSpace, DemandSpace};
use ttdc_core::synth::search::{minimum_cover, SearchOptions, SearchStats};
use ttdc_core::synth::SynthProblem;

/// Small exhaustively-checkable parameter points.
const POINTS: &[(usize, usize, usize, usize)] = &[
    (5, 1, 1, 2),
    (5, 2, 1, 2),
    (5, 1, 2, 2),
    (5, 3, 1, 2),
    (5, 2, 2, 2),
];

/// Median wall time of `iters` calls (after one warm-up), plus the result.
fn measure<D>(iters: usize, work: impl Fn() -> D) -> (f64, D) {
    let result = work();
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            work();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[iters / 2], result)
}

fn run_point(n: usize, d: usize, at: usize, ar: usize, iters: usize) -> Value {
    let name = format!("synth/n{n}_d{d}_at{at}_ar{ar}");
    eprintln!("sweep {name}:");
    let p = SynthProblem::new(n, d, at, ar);
    let space = DemandSpace::new(p.n, p.d);
    let cands = CandidateSpace::new(&space, p.alpha_t, p.alpha_r);
    let pruned_opts = SearchOptions::default();
    let exhaustive_opts = SearchOptions {
        prune: false,
        symmetry: false,
        ..SearchOptions::default()
    };
    // A 1-thread pool isolates the algorithmic win from parallel fan-out.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool construction cannot fail");
    let run = |opts: &SearchOptions| pool.install(|| minimum_cover(&space, &cands, opts));
    let (pruned_ms, (pruned_sol, pruned_stats)): (f64, (_, SearchStats)) =
        measure(iters, || run(&pruned_opts));
    let (exhaustive_ms, (exhaustive_sol, exhaustive_stats)) =
        measure(iters, || run(&exhaustive_opts));
    assert!(
        pruned_stats.exact && exhaustive_stats.exact,
        "{name}: both searches must run to completion"
    );
    assert_eq!(
        pruned_sol.slots.len(),
        exhaustive_sol.slots.len(),
        "{name}: pruned and exhaustive optima differ"
    );
    let schedule = cands.schedule(p.n, &pruned_sol.slots);
    assert!(
        requirement3_violation_naive(&schedule, p.d).is_none(),
        "{name}: pruned optimum fails the naive Requirement-3 oracle"
    );
    let speedup_time = exhaustive_ms / pruned_ms;
    let speedup_nodes = exhaustive_stats.nodes as f64 / pruned_stats.nodes as f64;
    let prune_rate = pruned_stats.pruned as f64 / pruned_stats.nodes as f64;
    let nodes_per_sec = pruned_stats.nodes as f64 / (pruned_ms / 1e3);
    eprintln!(
        "  optimum L={}: pruned {} nodes / {pruned_ms:.3} ms, exhaustive {} nodes / \
         {exhaustive_ms:.3} ms  ({speedup_time:.1}x time, {speedup_nodes:.1}x nodes)",
        pruned_sol.slots.len(),
        pruned_stats.nodes,
        exhaustive_stats.nodes,
    );
    json!({
        "name": name,
        "iterations": iters,
        "optimum_frame_length": pruned_sol.slots.len() as u64,
        "results_identical": true,
        "pruned_nodes": pruned_stats.nodes,
        "exhaustive_nodes": exhaustive_stats.nodes,
        "pruned_median_ms": pruned_ms,
        "exhaustive_median_ms": exhaustive_ms,
        "prune_rate": prune_rate,
        "nodes_per_sec": nodes_per_sec,
        "speedup_single_thread": speedup_time,
        "speedup_nodes": speedup_nodes,
        "root_branches_after_symmetry": pruned_stats.root_branches,
        "root_branches_total": pruned_stats.root_branches_total,
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 7 };

    let sweeps: Vec<Value> = POINTS
        .iter()
        .map(|&(n, d, at, ar)| run_point(n, d, at, ar, iters))
        .collect();

    let min_speedup = sweeps
        .iter()
        .filter_map(|s| s.get("speedup_single_thread")?.as_f64())
        .fold(f64::INFINITY, f64::min);
    eprintln!("minimum pruned-vs-exhaustive speedup across points: {min_speedup:.1}x");

    if smoke {
        eprintln!("smoke mode: identity checks passed on every point; JSON not rewritten");
        return;
    }

    let host_threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let doc = json!({
        "description": "branch-and-bound schedule synthesis: admissible deficit pruning + root symmetry reduction vs depth-bounded exhaustive enumeration, by (n, D, alpha_T, alpha_R)",
        "host_available_parallelism": host_threads as u64,
        "note": "both searches run on a 1-thread pool and are asserted to find the same optimum frame length; the pruned winner is re-verified by the naive Requirement-3 oracle",
        "sweeps": sweeps,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_synth.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_synth.json");
    eprintln!("wrote {path}");
}
