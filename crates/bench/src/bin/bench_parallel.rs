//! Parallel-runtime speedup trajectory: times the three workloads the
//! vendored rayon pool targets (Monte-Carlo replication, the Definition-2
//! brute-force throughput enumeration, the exhaustive Requirement-3 scan)
//! at 1, 2, and 4 pool threads, checks the answers are bit-identical at
//! every thread count, and writes `BENCH_parallel.json` at the repo root.
//!
//! Run with `cargo run --release -p ttdc-bench --bin bench_parallel`.
//! Speedup tracks *physical cores*: on a single-core host every
//! configuration degenerates to the sequential inline path (by design —
//! that is what keeps 1-thread runs byte-identical to the pre-parallel
//! code), so expect ~1.0× there and read multi-core numbers from CI or a
//! wider machine.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde_json::{json, to_string_pretty, Value};
use std::time::Instant;
use ttdc_core::requirements::is_topology_transparent_par;
use ttdc_core::throughput::average_throughput_bruteforce;
use ttdc_core::tsma::build_polynomial;
use ttdc_protocols::TsmaMac;
use ttdc_sim::{
    run_replications, GeometricNetwork, SimConfig, Simulator, Topology, TrafficPattern,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];
const ITERS: usize = 5;

fn topo() -> Topology {
    let mut rng = SmallRng::seed_from_u64(3);
    GeometricNetwork::random(50, 0.25, 4, &mut rng).topology()
}

/// Times `work` under a `threads`-wide pool: one warm-up call, then the
/// median wall time of [`ITERS`] timed calls, plus a digest of the result
/// for the cross-thread-count identity check.
fn measure<D: PartialEq + std::fmt::Debug>(
    threads: usize,
    work: &(dyn Fn() -> D + Sync),
) -> (f64, D) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool construction cannot fail");
    let digest = pool.install(work);
    let mut times: Vec<f64> = (0..ITERS)
        .map(|_| {
            let t0 = Instant::now();
            pool.install(work);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(f64::total_cmp);
    (times[ITERS / 2], digest)
}

fn run_workload<D: PartialEq + std::fmt::Debug>(
    name: &str,
    work: &(dyn Fn() -> D + Sync),
) -> Value {
    eprintln!("workload {name}:");
    let mut runs: Vec<Value> = Vec::new();
    let mut baseline_ms = 0.0;
    let mut baseline_digest = None;
    for threads in THREAD_COUNTS {
        let (ms, digest) = measure(threads, work);
        match &baseline_digest {
            None => {
                baseline_ms = ms;
                baseline_digest = Some(digest);
            }
            Some(b) => assert_eq!(
                b, &digest,
                "{name}: result at {threads} threads differs from 1 thread"
            ),
        }
        let speedup = baseline_ms / ms;
        eprintln!("  threads={threads}: {ms:.2} ms  ({speedup:.2}x vs 1 thread)");
        runs.push(json!({
            "threads": threads,
            "median_ms": ms,
            "speedup_vs_1_thread": speedup,
        }));
    }
    json!({
        "name": name,
        "iterations": ITERS,
        "results_identical_across_thread_counts": true,
        "runs": runs,
    })
}

fn main() {
    let ns20 = build_polynomial(20, 3);
    let ns36 = build_polynomial(36, 2);

    let workloads = vec![
        run_workload("sim/run_replications_x16_n50_2k_slots", &|| {
            let reports = run_replications(16, 7, |seed| {
                let mac = TsmaMac::new(50, 4);
                let mut sim = Simulator::new(
                    topo(),
                    TrafficPattern::PoissonUnicast { rate: 0.002 },
                    SimConfig {
                        seed,
                        ..Default::default()
                    },
                );
                sim.run(&mac, 2_000);
                sim.report()
            });
            reports
                .iter()
                .map(|r| (r.delivered, r.collisions, r.latency.mean().to_bits()))
                .collect::<Vec<_>>()
        }),
        run_workload("throughput/bruteforce_n20_d3", &|| {
            average_throughput_bruteforce(&ns20.schedule, 3).to_bits()
        }),
        run_workload("requirements/exhaustive_n36_d2", &|| {
            is_topology_transparent_par(&ns36.schedule, 2)
        }),
    ];

    let host_threads = std::thread::available_parallelism().map_or(0, |p| p.get());
    let doc = json!({
        "description": "wall-clock trajectory of the vendored rayon runtime at 1/2/4 pool threads",
        "host_available_parallelism": host_threads as u64,
        "note": "speedup tracks physical cores; a 1-core host runs every configuration on the sequential inline path and reports ~1.0x",
        "workloads": workloads,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    let body = to_string_pretty(&doc).expect("serialization cannot fail");
    ttdc_util::write_atomic(std::path::Path::new(path), (body + "\n").as_bytes())
        .expect("write BENCH_parallel.json");
    eprintln!("wrote {path}");
}
