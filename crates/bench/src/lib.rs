//! Criterion benchmarks for the ttdc workspace.
//!
//! This crate has no library API; it exists to host the `benches/` targets:
//!
//! * `bench_combinatorics` — field/OA/STS construction, CFF verification;
//! * `bench_construct` — the Figure-2 pipeline across network sizes;
//! * `bench_requirements` — exhaustive vs rayon vs sampled transparency checks;
//! * `bench_throughput` — Theorem-2 closed form vs Definition-2 enumeration;
//! * `bench_sim` — simulator slot rate per MAC protocol;
//! * `bench_faults` — fault-injection overhead per axis vs the zero-fault path;
//! * `bench_partition_strategies` — ablation of the Figure-2 division step.
//!
//! Run with `cargo bench -p ttdc-bench` (append `-- --quick` for a fast pass).
