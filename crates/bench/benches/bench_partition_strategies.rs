//! Ablation: the three partition strategies of lines 3–4 of Figure 2 —
//! identical schedules size-wise (Theorems 7–8 say frame length and average
//! throughput cannot differ), so this measures pure construction overhead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_core::construct::{construct, PartitionStrategy};
use ttdc_core::tsma::build_polynomial;

fn bench_strategies(c: &mut Criterion) {
    let ns = build_polynomial(100, 3);
    let mut g = c.benchmark_group("construct/strategy_n100");
    g.sample_size(20);
    for (name, strat) in [
        ("contiguous", PartitionStrategy::Contiguous),
        ("roundrobin", PartitionStrategy::RoundRobin),
        ("randomized", PartitionStrategy::Randomized { seed: 1 }),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &strat, |b, &strat| {
            b.iter(|| construct(black_box(&ns.schedule), 3, 2, 4, strat));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
