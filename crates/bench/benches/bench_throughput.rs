//! Benchmarks of the throughput computations: the Theorem-2 closed form
//! (linear in L) against the Definition-2 enumeration (binomial in n) —
//! the speedup that makes the paper's formula the practical one.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_core::throughput::{average_throughput, average_throughput_bruteforce, min_throughput};
use ttdc_core::tsma::build_polynomial;

fn bench_closed_vs_brute(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput/avg_d2");
    for n in [12usize, 16, 20] {
        let ns = build_polynomial(n, 2);
        g.bench_with_input(BenchmarkId::new("theorem2", n), &ns, |b, ns| {
            b.iter(|| average_throughput(black_box(&ns.schedule), 2));
        });
        g.bench_with_input(BenchmarkId::new("bruteforce", n), &ns, |b, ns| {
            b.iter(|| average_throughput_bruteforce(black_box(&ns.schedule), 2));
        });
    }
    g.finish();
}

fn bench_min_throughput(c: &mut Criterion) {
    let ns = build_polynomial(16, 3);
    let mut g = c.benchmark_group("throughput/min");
    g.sample_size(10);
    g.bench_function("n16_d3", |b| {
        b.iter(|| min_throughput(black_box(&ns.schedule), 3));
    });
    g.finish();
}

/// The exhaustive Definition-2 enumeration at 1 vs 4 pool threads — the
/// headline win of the parallel runtime (the outer transmitter loop fans
/// out; speedup tracks physical cores).
fn bench_bruteforce_parallel(c: &mut Criterion) {
    let ns = build_polynomial(20, 3);
    let mut g = c.benchmark_group("throughput/bruteforce_n20_d3");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| pool.install(|| average_throughput_bruteforce(black_box(&ns.schedule), 3)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_closed_vs_brute,
    bench_min_throughput,
    bench_bruteforce_parallel
);
criterion_main!(benches);
