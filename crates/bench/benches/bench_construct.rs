//! Benchmarks of the Figure-2 construction across network sizes — the
//! (offline) cost of producing a deployment's schedule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_core::construct::{construct, PartitionStrategy};
use ttdc_core::tsma::build_polynomial;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct/full_pipeline");
    g.sample_size(20);
    for n in [25usize, 50, 100, 200] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let ns = build_polynomial(black_box(n), 3);
                construct(&ns.schedule, 3, 2, 4, PartitionStrategy::RoundRobin)
            });
        });
    }
    g.finish();
}

fn bench_construct_only(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct/figure2_only");
    g.sample_size(20);
    for n in [25usize, 100, 400] {
        let ns = build_polynomial(n, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n), &ns, |b, ns| {
            b.iter(|| construct(&ns.schedule, 3, 2, 4, PartitionStrategy::RoundRobin));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline, bench_construct_only);
criterion_main!(benches);
