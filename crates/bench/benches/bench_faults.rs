//! Fault-injection overhead: slot rate with faults disabled vs each fault
//! axis enabled, on the same 50-node geometric network as `bench_sim`.
//!
//! The `none` case is the regression guard — the zero-fault path allocates
//! nothing and must stay within noise of `bench_sim`'s `ttdc` case, because
//! every fault branch is gated on the plan's knobs before any work happens.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ttdc_core::construct::PartitionStrategy;
use ttdc_protocols::TtdcMac;
use ttdc_sim::{
    CrashModel, FaultPlan, GeometricNetwork, GilbertElliott, SimulatorBuilder, Topology,
    TrafficPattern,
};

const N: usize = 50;
const D: usize = 4;
const SLOTS: u64 = 5_000;

fn topo() -> Topology {
    let mut rng = SmallRng::seed_from_u64(3);
    GeometricNetwork::random(N, 0.25, D, &mut rng).topology()
}

fn plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        (
            "per-20",
            FaultPlan::none().with_per(0.2).with_max_retries(8),
        ),
        (
            "bursty",
            FaultPlan::none().with_burst(GilbertElliott::bursty(0.01, 0.07)),
        ),
        (
            "crash",
            FaultPlan::none().with_crash(CrashModel::new(0.0005, 0.05)),
        ),
        ("drift", FaultPlan::none().with_drift(0.1)),
        (
            "all",
            FaultPlan::none()
                .with_per(0.2)
                .with_burst(GilbertElliott::bursty(0.01, 0.07))
                .with_crash(CrashModel::new(0.0005, 0.05))
                .with_drift(0.1)
                .with_max_retries(8),
        ),
    ]
}

fn bench_fault_axes(c: &mut Criterion) {
    let mac = TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin);
    let mut g = c.benchmark_group("sim_faults/5k_slots_n50");
    g.sample_size(10);
    for (name, plan) in plans() {
        g.bench_with_input(BenchmarkId::from_parameter(name), &plan, |b, plan| {
            b.iter(|| {
                let mut sim =
                    SimulatorBuilder::new(topo(), TrafficPattern::PoissonUnicast { rate: 0.01 })
                        .faults(*plan)
                        .build()
                        .unwrap();
                sim.run(black_box(&mac), SLOTS);
                let r = sim.report();
                (r.delivered, r.link_drops, r.retry_exhausted)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fault_axes);
criterion_main!(benches);
