//! Benchmarks of the combinatorial substrate: field construction and
//! arithmetic, orthogonal-array generation, Steiner systems, and the
//! cover-free verifier — the build-time cost of a schedule.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_combinatorics::{CoverFreeFamily, Gf, OrthogonalArray, SteinerTripleSystem};

fn bench_field_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("gf/build");
    for q in [7usize, 64, 125, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| Gf::new(black_box(q)).unwrap());
        });
    }
    g.finish();
}

fn bench_field_ops(c: &mut Criterion) {
    let gf = Gf::new(128).unwrap();
    c.bench_function("gf/mul_inv_sweep_128", |b| {
        b.iter(|| {
            let mut acc = 1usize;
            for a in 1..128 {
                acc = gf.mul(acc, black_box(a));
                acc = gf.add(acc, gf.inv(black_box(a)));
                if acc == 0 {
                    acc = 1;
                }
            }
            acc
        });
    });
}

fn bench_oa_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("oa/bush");
    for (q, k) in [(7usize, 1u32), (11, 1), (7, 2)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("q{q}_k{k}")),
            &(q, k),
            |b, &(q, k)| {
                let gf = Gf::new(q).unwrap();
                b.iter(|| OrthogonalArray::bush(black_box(&gf), black_box(k)));
            },
        );
    }
    g.finish();
}

fn bench_steiner(c: &mut Criterion) {
    let mut g = c.benchmark_group("steiner/build");
    for v in [63usize, 121, 243] {
        g.bench_with_input(BenchmarkId::from_parameter(v), &v, |b, &v| {
            b.iter(|| SteinerTripleSystem::new(black_box(v)).unwrap());
        });
    }
    g.finish();
}

fn bench_cff_verify(c: &mut Criterion) {
    let gf = Gf::new(7).unwrap();
    let f = CoverFreeFamily::from_polynomials(&gf, 1, 30);
    c.bench_function("cff/verify_d2_n30", |b| {
        b.iter(|| black_box(&f).is_d_cover_free(2));
    });
}

criterion_group!(
    benches,
    bench_field_build,
    bench_field_ops,
    bench_oa_build,
    bench_steiner,
    bench_cff_verify
);
criterion_main!(benches);
