//! Simulator benchmarks: slot rate per MAC protocol on a 50-node geometric
//! network — how much wall-clock one simulated second costs.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use ttdc_core::construct::PartitionStrategy;
use ttdc_protocols::{SlottedAlohaMac, TsmaMac, TtdcMac};
use ttdc_sim::{GeometricNetwork, MacProtocol, SimConfig, Simulator, Topology, TrafficPattern};

const N: usize = 50;
const D: usize = 4;
const SLOTS: u64 = 5_000;

fn topo() -> Topology {
    let mut rng = SmallRng::seed_from_u64(3);
    GeometricNetwork::random(N, 0.25, D, &mut rng).topology()
}

fn bench_protocol_slot_rate(c: &mut Criterion) {
    let protos: Vec<(&str, Box<dyn MacProtocol>)> = vec![
        (
            "ttdc",
            Box::new(TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin)),
        ),
        ("tsma", Box::new(TsmaMac::new(N, D))),
        ("aloha", Box::new(SlottedAlohaMac::new(0.1))),
    ];
    let mut g = c.benchmark_group("sim/5k_slots_n50");
    g.sample_size(10);
    for (name, mac) in &protos {
        g.bench_with_input(BenchmarkId::from_parameter(name), mac, |b, mac| {
            b.iter(|| {
                let mut sim = Simulator::new(
                    topo(),
                    TrafficPattern::PoissonUnicast { rate: 0.01 },
                    SimConfig::default(),
                );
                sim.run(black_box(mac.as_ref()), SLOTS);
                sim.report().delivered
            });
        });
    }
    g.finish();
}

fn bench_saturated_mode(c: &mut Criterion) {
    let mac = TsmaMac::new(N, D);
    let mut g = c.benchmark_group("sim/saturated_n50");
    g.sample_size(10);
    g.bench_function("5k_slots", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(
                topo(),
                TrafficPattern::SaturatedBroadcast,
                SimConfig::default(),
            );
            sim.run(black_box(&mac), SLOTS);
            sim.report().collisions
        });
    });
    g.finish();
}

criterion_group!(benches, bench_protocol_slot_rate, bench_saturated_mode);
criterion_main!(benches);
