//! Simulator benchmarks: slot rate per MAC protocol on a 50-node geometric
//! network — how much wall-clock one simulated second costs — plus a
//! steady-state allocation audit of the step loop and a parallel-vs-serial
//! replication sweep.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use ttdc_core::construct::PartitionStrategy;
use ttdc_protocols::{SlottedAlohaMac, TsmaMac, TtdcMac};
use ttdc_sim::{
    run_replications, GeometricNetwork, MacProtocol, SimulatorBuilder, Topology, TrafficPattern,
};

const N: usize = 50;
const D: usize = 4;
const SLOTS: u64 = 5_000;

/// Counts this thread's heap allocations so the steady-state audit ignores
/// whatever the pool's worker threads are doing.
struct CountingAlloc;

thread_local! {
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The simulator's per-slot scratch (`transmitting`, `tx_queue_idx`, the
/// `successes` list) is hoisted into the `Simulator`, so once queues and
/// scratch have grown to their working capacity the step loop must not
/// touch the heap at all. The offered load (0.002) is deliberately below
/// the schedule's service rate: at an unstable load the backlog — and so
/// queue capacity and the latency histogram's bucket range — grows without
/// bound and no warm-up suffices. Deterministic (fixed seed), checked on
/// every `cargo bench` run before the timings.
fn assert_zero_alloc_steady_state() {
    let mac = TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin);
    let mut sim = SimulatorBuilder::new(topo(), TrafficPattern::PoissonUnicast { rate: 0.002 })
        .build()
        .unwrap();
    sim.run(&mac, 60_000); // warm-up: queues, scratch, histogram reach capacity
    let before = ALLOC_COUNT.with(Cell::get);
    sim.run(&mac, 5_000);
    let after = ALLOC_COUNT.with(Cell::get);
    assert_eq!(
        after - before,
        0,
        "steady-state sim step loop allocated {} time(s)",
        after - before
    );
    println!("sim/steady_state_allocs                            0 (asserted)");
}

fn topo() -> Topology {
    let mut rng = SmallRng::seed_from_u64(3);
    GeometricNetwork::random(N, 0.25, D, &mut rng).topology()
}

fn bench_protocol_slot_rate(c: &mut Criterion) {
    let protos: Vec<(&str, Box<dyn MacProtocol>)> = vec![
        (
            "ttdc",
            Box::new(TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin)),
        ),
        ("tsma", Box::new(TsmaMac::new(N, D))),
        ("aloha", Box::new(SlottedAlohaMac::new(0.1))),
    ];
    let mut g = c.benchmark_group("sim/5k_slots_n50");
    g.sample_size(10);
    for (name, mac) in &protos {
        g.bench_with_input(BenchmarkId::from_parameter(name), mac, |b, mac| {
            b.iter(|| {
                let mut sim =
                    SimulatorBuilder::new(topo(), TrafficPattern::PoissonUnicast { rate: 0.01 })
                        .build()
                        .unwrap();
                sim.run(black_box(mac.as_ref()), SLOTS);
                sim.report().delivered
            });
        });
    }
    g.finish();
}

fn bench_saturated_mode(c: &mut Criterion) {
    let mac = TsmaMac::new(N, D);
    let mut g = c.benchmark_group("sim/saturated_n50");
    g.sample_size(10);
    g.bench_function("5k_slots", |b| {
        b.iter(|| {
            let mut sim = SimulatorBuilder::new(topo(), TrafficPattern::SaturatedBroadcast)
                .build()
                .unwrap();
            sim.run(black_box(&mac), SLOTS);
            sim.report().collisions
        });
    });
    g.finish();
}

/// Monte-Carlo replications at 1 vs 4 pool threads — the workload the
/// parallel runtime upgrade targets (speedup scales with physical cores).
fn bench_replications_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim/replications_x16");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| {
                pool.install(|| {
                    run_replications(16, 7, |seed| {
                        let mac = TsmaMac::new(N, D);
                        let mut sim = SimulatorBuilder::new(
                            topo(),
                            TrafficPattern::PoissonUnicast { rate: 0.01 },
                        )
                        .seed(seed)
                        .build()
                        .unwrap();
                        sim.run(&mac, 500);
                        sim.report()
                    })
                    .len()
                })
            });
        });
    }
    g.finish();
}

fn steady_state_alloc_audit(_c: &mut Criterion) {
    assert_zero_alloc_steady_state();
}

criterion_group!(
    benches,
    steady_state_alloc_audit,
    bench_protocol_slot_rate,
    bench_saturated_mode,
    bench_replications_parallel
);
criterion_main!(benches);
