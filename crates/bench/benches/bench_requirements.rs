//! Benchmarks of the topology-transparency checkers: the exhaustive
//! Requirement-3 scan (serial vs rayon-parallel) and the sampled checker —
//! the verification cost the library pays per deployment envelope.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_core::requirements::{
    is_topology_transparent, is_topology_transparent_par, spot_check_topology_transparent,
};
use ttdc_core::tsma::build_polynomial;

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("requirements/exhaustive_d2");
    g.sample_size(10);
    for n in [16usize, 25, 36] {
        let ns = build_polynomial(n, 2);
        g.bench_with_input(BenchmarkId::new("serial", n), &ns, |b, ns| {
            b.iter(|| is_topology_transparent(black_box(&ns.schedule), 2));
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &ns, |b, ns| {
            b.iter(|| is_topology_transparent_par(black_box(&ns.schedule), 2));
        });
    }
    g.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let ns = build_polynomial(200, 4);
    c.bench_function("requirements/sampled_n200_d4_1k", |b| {
        b.iter(|| spot_check_topology_transparent(black_box(&ns.schedule), 4, 1000, 7));
    });
}

criterion_group!(benches, bench_exhaustive, bench_sampled);
criterion_main!(benches);
