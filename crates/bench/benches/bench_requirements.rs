//! Benchmarks of the topology-transparency checkers: the exhaustive
//! Requirement-3 scan (serial vs rayon-parallel) and the sampled checker —
//! the verification cost the library pays per deployment envelope.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ttdc_core::requirements::{
    is_topology_transparent, is_topology_transparent_par, requirement1_violation,
    requirement1_violation_naive, requirement2_violation, requirement2_violation_naive,
    spot_check_topology_transparent,
};
use ttdc_core::tsma::build_polynomial;

fn bench_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("requirements/exhaustive_d2");
    g.sample_size(10);
    for n in [16usize, 25, 36] {
        let ns = build_polynomial(n, 2);
        g.bench_with_input(BenchmarkId::new("serial", n), &ns, |b, ns| {
            b.iter(|| is_topology_transparent(black_box(&ns.schedule), 2));
        });
        g.bench_with_input(BenchmarkId::new("rayon", n), &ns, |b, ns| {
            b.iter(|| is_topology_transparent_par(black_box(&ns.schedule), 2));
        });
    }
    g.finish();
}

fn bench_sampled(c: &mut Criterion) {
    let ns = build_polynomial(200, 4);
    c.bench_function("requirements/sampled_n200_d4_1k", |b| {
        b.iter(|| spot_check_topology_transparent(black_box(&ns.schedule), 4, 1000, 7));
    });
}

/// The parallel Requirement-3 scan at 1 vs 4 pool threads (the outer
/// transmitter quantifier fans out; speedup tracks physical cores).
fn bench_exhaustive_parallel(c: &mut Criterion) {
    let ns = build_polynomial(36, 2);
    let mut g = c.benchmark_group("requirements/exhaustive_n36_d2");
    g.sample_size(10);
    for threads in [1usize, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        g.bench_with_input(BenchmarkId::new("threads", threads), &pool, |b, pool| {
            b.iter(|| pool.install(|| is_topology_transparent_par(black_box(&ns.schedule), 2)));
        });
    }
    g.finish();
}

/// The from-scratch reference scan vs the incremental subset engine, both
/// on a forced 1-thread pool so the comparison isolates the per-subset
/// algorithmic win (delta unions + witness-safe pruning) from parallelism.
fn bench_naive_vs_incremental(c: &mut Criterion) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();

    let mut g = c.benchmark_group("requirements/req1_naive_vs_incremental_d2");
    g.sample_size(10);
    for n in [16usize, 25, 36] {
        let ns = build_polynomial(n, 2);
        g.bench_with_input(BenchmarkId::new("naive", n), &ns, |b, ns| {
            b.iter(|| requirement1_violation_naive(black_box(&ns.schedule), 2));
        });
        g.bench_with_input(BenchmarkId::new("incremental", n), &ns, |b, ns| {
            b.iter(|| pool.install(|| requirement1_violation(black_box(&ns.schedule), 2)));
        });
    }
    g.finish();

    let mut g = c.benchmark_group("requirements/req2_naive_vs_incremental_d2");
    g.sample_size(10);
    for n in [16usize, 25] {
        let ns = build_polynomial(n, 2);
        g.bench_with_input(BenchmarkId::new("naive", n), &ns, |b, ns| {
            b.iter(|| requirement2_violation_naive(black_box(&ns.schedule), 2));
        });
        g.bench_with_input(BenchmarkId::new("incremental", n), &ns, |b, ns| {
            b.iter(|| pool.install(|| requirement2_violation(black_box(&ns.schedule), 2)));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_sampled,
    bench_exhaustive_parallel,
    bench_naive_vs_incremental
);
criterion_main!(benches);
