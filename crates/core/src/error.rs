//! Typed errors for schedule construction.
//!
//! [`Schedule::try_new`](crate::Schedule::try_new) reports malformed
//! `⟨T, R⟩` input as a [`ScheduleError`] instead of panicking, so callers
//! that assemble schedules from untrusted input (files, CLI arguments) get
//! a recoverable error path. The panicking
//! [`Schedule::new`](crate::Schedule::new) remains and formats the same
//! messages.

use std::fmt;

/// A rejected `⟨T, R⟩` schedule specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleError {
    /// `T` and `R` differ in length.
    LengthMismatch {
        /// `|T|`.
        t_len: usize,
        /// `|R|`.
        r_len: usize,
    },
    /// The frame is empty.
    EmptyFrame,
    /// A per-slot set is over the wrong node universe.
    UniverseMismatch {
        /// `"T"` or `"R"`.
        array: &'static str,
        /// The offending slot index.
        slot: usize,
        /// The universe the set was built over.
        found: usize,
        /// The expected universe `n`.
        expected: usize,
    },
    /// Some node appears in both `T[i]` and `R[i]`.
    TransmitReceiveOverlap {
        /// The offending slot index.
        slot: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::LengthMismatch { t_len, r_len } => {
                write!(f, "T and R must have the same length: {t_len} vs {r_len}")
            }
            ScheduleError::EmptyFrame => write!(f, "a schedule needs at least one slot"),
            ScheduleError::UniverseMismatch {
                array,
                slot,
                found,
                expected,
            } => write!(
                f,
                "{array}[{slot}] universe mismatch: {found} instead of {expected}"
            ),
            ScheduleError::TransmitReceiveOverlap { slot } => write!(
                f,
                "T[{slot}] and R[{slot}] intersect: a node cannot transmit and receive \
                 in the same slot"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// [`crate::Schedule::new`] panics with these Display strings; they
    /// must keep the substrings historic `#[should_panic]` tests assert on.
    #[test]
    fn display_keeps_legacy_panic_substrings() {
        let cases: Vec<(ScheduleError, &str)> = vec![
            (
                ScheduleError::LengthMismatch { t_len: 1, r_len: 0 },
                "same length",
            ),
            (ScheduleError::EmptyFrame, "at least one slot"),
            (
                ScheduleError::UniverseMismatch {
                    array: "T",
                    slot: 3,
                    found: 2,
                    expected: 5,
                },
                "T[3] universe mismatch",
            ),
            (
                ScheduleError::TransmitReceiveOverlap { slot: 1 },
                "T[1] and R[1] intersect",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should contain {needle:?}"
            );
        }
    }
}
