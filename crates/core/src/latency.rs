//! Worst-case packet latency (access delay).
//!
//! The abstract promises duty cycling "while bounding packet latency in the
//! presence of collisions": because a topology-transparent schedule gives
//! every `(x, y, S)` at least one guaranteed slot per frame, a packet
//! arriving at `x` waits at most one maximal gap between consecutive
//! guaranteed slots — never more than one frame. This module computes
//! those gaps exactly: the worst-case and arrival-averaged access delay per
//! link and over the whole class `N_n^D`.

use crate::schedule::Schedule;
use crate::throughput::{guaranteed_slots, SweepScratch};
use rayon::prelude::*;
use ttdc_util::BitSet;

/// The maximum cyclic gap between consecutive set slots: the number of
/// slots a packet can wait for the next guaranteed opportunity if it
/// arrives at the worst moment. `None` if the set is empty (unbounded).
///
/// Streams the set's elements directly (no intermediate Vec) — this runs
/// once per `(x, y, S)` inside the exhaustive delay sweeps.
pub fn max_cyclic_gap(slots: &BitSet) -> Option<usize> {
    let l = slots.universe();
    let mut iter = slots.iter();
    let first = iter.next()?;
    let mut prev = first;
    let mut max_gap = 0;
    for s in iter {
        max_gap = max_gap.max(s - prev);
        prev = s;
    }
    Some(max_gap.max(first + l - prev))
}

/// The arrival-averaged wait until the next set slot, assuming the packet
/// arrives uniformly at random within a frame: `Σ g_i·(g_i+1)/2 / L` over
/// the cyclic gaps `g_i` (a packet arriving during a gap of length `g`
/// waits `1..=g` slots, uniformly). `None` if the set is empty.
///
/// The gaps are accumulated in the same ascending-then-wrap order as the
/// original Vec-based implementation, so the f64 result is bit-identical.
pub fn mean_cyclic_wait(slots: &BitSet) -> Option<f64> {
    let l = slots.universe();
    let mut iter = slots.iter();
    let first = iter.next()?;
    let mut prev = first;
    let mut acc = 0.0;
    let mut add_gap = |g: f64| acc += g * (g + 1.0) / 2.0;
    for s in iter {
        add_gap((s - prev) as f64);
        prev = s;
    }
    add_gap((first + l - prev) as f64);
    Some(acc / l as f64)
}

/// Worst-case access delay for the link `x → y` when `y`'s other
/// neighbours are `others`: the maximum wait until a guaranteed slot.
pub fn link_access_delay(s: &Schedule, x: usize, y: usize, others: &[usize]) -> Option<usize> {
    max_cyclic_gap(&guaranteed_slots(s, x, y, others))
}

/// The schedule's worst-case access delay over the whole class `N_n^D`:
/// the maximum of [`link_access_delay`] over every `x ≠ y` and every
/// `(D−1)`-set `S` of other nodes. `None` if some configuration has no
/// guaranteed slot at all (the schedule is not topology-transparent, so no
/// finite latency bound exists).
pub fn worst_case_access_delay(s: &Schedule, d: usize) -> Option<usize> {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d);
    (0..n)
        .into_par_iter()
        .map(|x| {
            let mut worst = 0usize;
            let mut scratch = SweepScratch::new(n, s.frame_length());
            for y in 0..n {
                if y == x {
                    continue;
                }
                scratch.prepare(s, x, y);
                let mut dead = false;
                // 𝒯(x, y, S) is the counter's residual; the max over
                // subsets is order-free, so the revolving-door order is
                // fine here.
                scratch.sweep(d, |counter| match max_cyclic_gap(counter.uncovered()) {
                    Some(g) => {
                        worst = worst.max(g);
                        true
                    }
                    None => {
                        dead = true;
                        false
                    }
                });
                if dead {
                    return None;
                }
            }
            Some(worst)
        })
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// The class-wide mean access delay: [`mean_cyclic_wait`] averaged over
/// every `(x, y, S)`. `None` under the same condition as
/// [`worst_case_access_delay`].
pub fn average_access_delay(s: &Schedule, d: usize) -> Option<f64> {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d);
    let per_x: Option<Vec<(f64, u64)>> = (0..n)
        .into_par_iter()
        .map(|x| {
            let mut sum = 0.0;
            let mut count = 0u64;
            let mut scratch = SweepScratch::new(n, s.frame_length());
            for y in 0..n {
                if y == x {
                    continue;
                }
                scratch.prepare(s, x, y);
                let mut dead = false;
                // The per-subset waits are summed in f64, so the visit
                // order matters for bit-identity: use the lexicographic
                // delta stream, which reproduces the historical order.
                scratch.sweep_lex(d, |counter| match mean_cyclic_wait(counter.uncovered()) {
                    Some(w) => {
                        sum += w;
                        count += 1;
                        true
                    }
                    None => {
                        dead = true;
                        false
                    }
                });
                if dead {
                    return None;
                }
            }
            Some((sum, count))
        })
        .collect();
    let per_x = per_x?;
    let total: f64 = per_x.iter().map(|(s, _)| s).sum();
    let count: u64 = per_x.iter().map(|(_, c)| c).sum();
    Some(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, PartitionStrategy};
    use crate::tsma::{build_identity, build_polynomial};

    #[test]
    fn cyclic_gap_basics() {
        let mut s = BitSet::new(10);
        assert_eq!(max_cyclic_gap(&s), None);
        assert_eq!(mean_cyclic_wait(&s), None);
        s.insert(3);
        // Single slot: gap wraps the whole frame.
        assert_eq!(max_cyclic_gap(&s), Some(10));
        assert!((mean_cyclic_wait(&s).unwrap() - 5.5).abs() < 1e-12);
        s.insert(8);
        assert_eq!(max_cyclic_gap(&s), Some(5));
        // Gaps 5 and 5: mean wait = (15 + 15)/10 = 3.
        assert!((mean_cyclic_wait(&s).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_slots_give_even_gaps() {
        let s = BitSet::from_iter(12, [0, 4, 8]);
        assert_eq!(max_cyclic_gap(&s), Some(4));
        // All gaps 4: mean wait = 3·(4·5/2)/12 = 2.5.
        assert!((mean_cyclic_wait(&s).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn full_set_waits_one_slot() {
        let s = BitSet::full(6);
        assert_eq!(max_cyclic_gap(&s), Some(1));
        assert!((mean_cyclic_wait(&s).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_schedule_delay_is_one_frame() {
        // Each link has exactly one guaranteed slot per frame.
        let ns = build_identity(6).schedule;
        for d in 1..=3 {
            assert_eq!(worst_case_access_delay(&ns, d), Some(6), "d={d}");
        }
        let mean = average_access_delay(&ns, 2).unwrap();
        assert!(
            (mean - 3.5).abs() < 1e-12,
            "uniform arrival in 6 slots: {mean}"
        );
    }

    #[test]
    fn transparent_schedule_delay_bounded_by_frame() {
        let ns = build_polynomial(16, 3).schedule;
        let delay = worst_case_access_delay(&ns, 3).unwrap();
        assert!(delay <= ns.frame_length());
        assert!(delay >= 1);
        let mean = average_access_delay(&ns, 3).unwrap();
        assert!(mean <= delay as f64);
    }

    #[test]
    fn non_transparent_schedule_has_unbounded_delay() {
        let gf = ttdc_combinatorics::Gf::new(3).unwrap();
        let cff = ttdc_combinatorics::CoverFreeFamily::from_polynomials(&gf, 1, 9);
        let s = Schedule::from_cff(&cff);
        assert_eq!(worst_case_access_delay(&s, 3), None);
        assert_eq!(average_access_delay(&s, 3), None);
        assert!(worst_case_access_delay(&s, 2).is_some());
    }

    #[test]
    fn construction_delay_still_bounded_by_new_frame() {
        let ns = build_polynomial(12, 2).schedule;
        let c = construct(&ns, 2, 2, 3, PartitionStrategy::RoundRobin);
        let delay = worst_case_access_delay(&c.schedule, 2).unwrap();
        assert!(delay <= c.schedule.frame_length());
        // Duty cycling pays latency: the bound grows with the frame.
        let src_delay = worst_case_access_delay(&ns, 2).unwrap();
        assert!(delay >= src_delay, "{delay} < {src_delay}");
    }

    #[test]
    fn per_link_delay_accessor() {
        let ns = build_identity(5).schedule;
        assert_eq!(link_access_delay(&ns, 0, 1, &[2]), Some(5));
        // x never reaches itself.
        assert_eq!(link_access_delay(&ns, 0, 0, &[]), None);
    }
}
