//! # ttdc-core — Topology-Transparent Duty Cycling
//!
//! A from-scratch implementation of *"Topology-Transparent Duty Cycling for
//! Wireless Sensor Networks"* (Chen, Fleury, Syrotiuk; IPDPS 2007).
//!
//! A WSN schedule `⟨T, R⟩` assigns each slot a set of permitted
//! transmitters and receivers; everyone else sleeps. The schedule is
//! *topology-transparent* for the class `N_n^D` (≤ n nodes, degree ≤ D)
//! when every node can reach every neighbour collision-free once per frame
//! in **every** topology of the class — no topology information needed, so
//! mobility and churn are free. This crate implements:
//!
//! * the schedule model and set algebra ([`schedule`]);
//! * the three equivalent topology-transparency requirements and their
//!   exhaustive/parallel/sampled checkers ([`requirements`]);
//! * worst-case throughput: Definitions 1–2, the Theorem-2 closed form, and
//!   brute-force twins ([`throughput`]);
//! * the `g_{n,D}` machinery and the Theorem-3/4 upper bounds
//!   ([`gfunc`], [`bounds`]);
//! * the Figure-2 construction of `(α_T, α_R)`-schedules with pluggable
//!   partition strategies ([`construct`](mod@construct));
//! * the Theorem-7/8/9 frame-length and optimality analysis ([`analysis`]);
//! * worst-case and mean access delay — the latency the abstract promises
//!   to bound ([`latency`]) — and a deployment text format ([`io`]);
//! * ready-made non-sleeping substrates — polynomial/orthogonal-array TSMA,
//!   Steiner triple systems, identity TDMA ([`tsma`]).
//!
//! ## Quickstart
//!
//! ```
//! use ttdc_core::construct::PartitionStrategy;
//!
//! // 30 nodes, degree ≤ 3, at most 2 transmitters and 4 receivers per slot.
//! let c = ttdc_core::tsma::build_duty_cycled(30, 3, 2, 4, PartitionStrategy::RoundRobin);
//! assert!(c.schedule.is_alpha_schedule(2, 4));
//! assert!(ttdc_core::requirements::is_topology_transparent(&c.schedule, 3));
//! println!(
//!     "frame = {} slots, mean duty cycle = {:.1}%",
//!     c.schedule.frame_length(),
//!     100.0 * c.schedule.average_duty_cycle()
//! );
//! ```

pub mod analysis;
pub mod bounds;
pub mod construct;
pub mod error;
pub mod fingerprint;
pub mod gfunc;
pub mod io;
pub mod latency;
pub mod requirements;
pub mod schedule;
pub mod synth;
pub mod throughput;
pub mod tsma;

pub use bounds::{alpha_bound, general_bound, AlphaBound, GeneralBound};
pub use construct::{construct, construct_exact, Construction, PartitionStrategy};
pub use error::ScheduleError;
pub use requirements::{is_topology_transparent, Violation};
pub use schedule::Schedule;
pub use throughput::{average_throughput, min_throughput};
pub use tsma::{build_duty_cycled, NonSleepingSchedule, SourceKind};
