//! The function `g_{n,D}(x)` of §5 and its two properties.
//!
//! `g_{n,D}(x) = x·C(n−x, D) / (n·C(n−1, D))` is the average worst-case
//! throughput of a non-sleeping schedule whose every slot has exactly `x`
//! transmitters. The paper uses two properties:
//!
//! 1. `g_{n,D}(x) ≤ nD^D / ((n−D)(D+1)^(D+1))` for all `x ∈ [0, n−1]`;
//! 2. the maximiser lies in `{⌊(n−D)/(D+1)⌋, ⌈(n−D)/(D+1)⌉}`.
//!
//! Both are verified exhaustively in this module's tests and property
//! tests; experiment E3 sweeps `g` to regenerate the Theorem-3 picture.

use ttdc_util::binomial_ratio;

/// `g_{n,D}(x) = x·C(n−x, D) / (n·C(n−1, D))`.
///
/// Defined for `0 ≤ x ≤ n−1` and `1 ≤ D ≤ n−1`; evaluates to `0` whenever
/// the numerator binomial vanishes (`x > n−D`).
pub fn g(n: usize, d: usize, x: usize) -> f64 {
    assert!(d >= 1 && d < n, "need 1 ≤ D ≤ n−1");
    assert!(x < n, "x must be in [0, n−1]");
    x as f64 / n as f64 * binomial_ratio((n - x) as u64, (n - 1) as u64, d as u64)
}

/// Property (1): the closed upper bound `nD^D / ((n−D)(D+1)^(D+1))`.
pub fn g_upper_bound(n: usize, d: usize) -> f64 {
    assert!(d >= 1 && d < n);
    let (n, d) = (n as f64, d as f64);
    n / (n - d) * (d / (d + 1.0)).powf(d) / (d + 1.0)
}

/// Property (2): the integer maximiser of `g_{n,D}` over `[0, n−1]`,
/// chosen from `{⌊(n−D)/(D+1)⌋, ⌈(n−D)/(D+1)⌉}` (clamped into range).
pub fn g_argmax(n: usize, d: usize) -> usize {
    assert!(d >= 1 && d < n);
    let lo = (n - d) / (d + 1);
    let hi = (n - d).div_ceil(d + 1).min(n - 1);
    if g(n, d, lo) >= g(n, d, hi) {
        lo
    } else {
        hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force argmax of g over the full range, for cross-checking.
    fn argmax_bruteforce(n: usize, d: usize) -> usize {
        (0..n)
            .max_by(|&a, &b| g(n, d, a).partial_cmp(&g(n, d, b)).unwrap())
            .unwrap()
    }

    #[test]
    fn g_at_boundaries() {
        assert_eq!(g(10, 3, 0), 0.0, "no transmitters, no throughput");
        // x = n−1: C(1, D) = 0 for D ≥ 2.
        assert_eq!(g(10, 3, 9), 0.0);
        // D = 1, x = n−1: C(1,1) = 1 → g = (n−1)/(n·(n−1)/(n−1)) ...
        let v = g(10, 1, 9);
        assert!((v - 9.0 / 10.0 * (1.0 / 9.0)).abs() < 1e-12);
    }

    #[test]
    fn g_closed_form_spot_values() {
        // n=10, D=2, x=3: 3·C(7,2)/(10·C(9,2)) = 3·21/(10·36) = 0.175
        assert!((g(10, 2, 3) - 0.175).abs() < 1e-12);
        // n=6, D=3, x=1: 1·C(5,3)/(6·C(5,3)) = 1/6
        assert!((g(6, 3, 1) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn property1_upper_bound_holds_exhaustively() {
        for n in 3..40usize {
            for d in 1..n {
                let bound = g_upper_bound(n, d);
                for x in 0..n {
                    assert!(
                        g(n, d, x) <= bound + 1e-12,
                        "g({n},{d},{x}) = {} > bound {bound}",
                        g(n, d, x)
                    );
                }
            }
        }
    }

    #[test]
    fn property2_argmax_location_exhaustively() {
        for n in 3..40usize {
            for d in 1..n {
                let fast = g_argmax(n, d);
                let brute = argmax_bruteforce(n, d);
                assert!(
                    (g(n, d, fast) - g(n, d, brute)).abs() < 1e-15,
                    "n={n} d={d}: argmax {fast} vs brute {brute}"
                );
                // And the maximiser really is one of the two candidates.
                let lo = (n - d) / (d + 1);
                let hi = (n - d).div_ceil(d + 1).min(n - 1);
                assert!(fast == lo || fast == hi);
            }
        }
    }

    #[test]
    fn unimodality_up_to_n_minus_d() {
        // The proof of property (2) uses that g increases then decreases on
        // the support. Check the sign pattern of successive differences.
        for (n, d) in [(20usize, 3usize), (15, 2), (30, 5), (9, 1)] {
            let vals: Vec<f64> = (0..=(n - d)).map(|x| g(n, d, x)).collect();
            let mut decreasing = false;
            for w in vals.windows(2) {
                if w[1] < w[0] - 1e-15 {
                    decreasing = true;
                } else if decreasing {
                    assert!(
                        w[1] <= w[0] + 1e-15,
                        "n={n} d={d}: g increases again after decreasing"
                    );
                }
            }
        }
    }

    #[test]
    fn crossover_ratio_identity() {
        // g(x)/g(x+1) = x(n−x) / ((x+1)(n−D−x)) — the identity used in the
        // proof of property (2).
        let (n, d) = (20usize, 4usize);
        for x in 1..(n - d) {
            let lhs = g(n, d, x) / g(n, d, x + 1);
            let rhs = (x * (n - x)) as f64 / ((x + 1) * (n - d - x)) as f64;
            assert!((lhs - rhs).abs() < 1e-9, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic(expected = "1 ≤ D ≤ n−1")]
    fn degenerate_degree_rejected() {
        g(5, 5, 1);
    }

    #[test]
    #[should_panic(expected = "x must be in")]
    fn out_of_range_x_rejected() {
        g(5, 2, 5);
    }
}
