//! The paper's construction of topology-transparent `(α_T, α_R)`-schedules
//! (§6, Figure 2).
//!
//! Given a topology-transparent non-sleeping schedule `⟨T⟩`, each slot `i`
//! is expanded into a grid of `⌈|T[i]|/α_T*⌉ × ⌈|R[i]|/α_R⌉` new slots: the
//! transmitters of slot `i` are divided into subsets of size
//! `min(α_T*, |T[i]|)`, the receivers (`V − T[i]`) into subsets of size
//! `min(α_R, |R[i]|)`, and every (transmitter-subset, receiver-subset) pair
//! gets one slot. Receiver subsets smaller than `α_R` are padded with other
//! non-transmitting nodes (line 8 of Figure 2). Lemma 5/Theorem 6 prove the
//! result topology-transparent; Theorems 7–9 quantify frame length and
//! throughput — their formulas live in [`crate::analysis`].
//!
//! The paper notes that *how* the sets are divided does not affect
//! correctness, frame length, or average throughput; it does affect
//! per-node energy balance, so the division is pluggable
//! ([`PartitionStrategy`]) and experiment E11 measures the difference.

use crate::bounds::alpha_bound;
use crate::schedule::Schedule;
use ttdc_util::BitSet;

/// How a slot's transmitter/receiver set is divided into fixed-size,
/// covering (but not necessarily disjoint) subsets — lines 3–4 of Figure 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Subset `j` takes elements `[j·s, j·s + s)`; the final subset is
    /// shifted back so it fits, re-using a few earlier elements. Simple and
    /// cache-friendly, but the overlap always lands on the same nodes.
    Contiguous,
    /// Subset `j` takes `s` consecutive elements starting at `j·s mod m`,
    /// wrapping around. Every element appears in `⌊k·s/m⌋` or `⌈k·s/m⌉`
    /// subsets — the balanced division of §7's energy-balance remark.
    RoundRobin,
    /// Like `RoundRobin` but over a seeded shuffle of the elements, so the
    /// extra appearances land on random nodes each slot.
    Randomized {
        /// Shuffle seed (deterministic construction).
        seed: u64,
    },
}

/// The output of the construction, with provenance kept for the analysis
/// of Theorems 8–9 and for debugging.
#[derive(Clone, Debug)]
pub struct Construction {
    /// The constructed `(α_T, α_R)`-schedule `⟨T̄, R̄⟩`.
    pub schedule: Schedule,
    /// The `α_T*` actually used for the transmitter subsets.
    pub alpha_t_star: usize,
    /// For each constructed slot, the original slot it was expanded from.
    pub slot_origin: Vec<usize>,
}

/// The Main Program of Figure 2: computes the optimal `α_T*` per Theorem 4
/// and calls [`construct_exact`] with it.
///
/// Requires `n ≥ D ≥ 1`, `α_T, α_R ≥ 1`, `α_T + α_R ≤ n`, and `⟨T⟩`
/// non-sleeping (the topology-transparency of `⟨T⟩` is the caller's
/// precondition, as in the paper; it is what Theorem 6's guarantee rests
/// on, but the expansion itself never inspects it).
pub fn construct(
    non_sleeping: &Schedule,
    d: usize,
    alpha_t: usize,
    alpha_r: usize,
    strategy: PartitionStrategy,
) -> Construction {
    let n = non_sleeping.num_nodes();
    let bound = alpha_bound(n, d, alpha_t, alpha_r);
    construct_exact(non_sleeping, bound.alpha_t_star, alpha_r, strategy)
}

/// Function `Construct(α_T*, α_R, ⟨T⟩)` of Figure 2, with the transmitter
/// subset size given explicitly.
///
/// As the paper notes after Theorem 6, this also serves to build schedules
/// with *exactly* `α_T'` transmitters and `α_R'` receivers per slot for any
/// `α_T' + α_R' ≤ n`, provided `|T[i]| ≥ α_T'` — useful for the
/// equality cases of Theorems 3 and 4.
pub fn construct_exact(
    non_sleeping: &Schedule,
    alpha_t_star: usize,
    alpha_r: usize,
    strategy: PartitionStrategy,
) -> Construction {
    let n = non_sleeping.num_nodes();
    assert!(
        non_sleeping.is_non_sleeping(),
        "the input schedule must be non-sleeping"
    );
    assert!(alpha_t_star >= 1 && alpha_r >= 1, "need α_T*, α_R ≥ 1");
    assert!(
        alpha_t_star + alpha_r <= n,
        "need α_T* + α_R ≤ n (α_T* = {alpha_t_star}, α_R = {alpha_r}, n = {n})"
    );
    let l = non_sleeping.frame_length();
    let mut t_bar: Vec<BitSet> = Vec::new();
    let mut r_bar: Vec<BitSet> = Vec::new();
    let mut slot_origin = Vec::new();
    let mut rng_state = match strategy {
        PartitionStrategy::Randomized { seed } => seed,
        _ => 0,
    };
    for i in 0..l {
        let t_elems: Vec<usize> = non_sleeping.transmitters(i).iter().collect();
        let r_elems: Vec<usize> = non_sleeping.receivers(i).iter().collect();
        // Line 3: divide T[i] into ⌈|T[i]|/α_T*⌉ subsets of size
        // min(α_T*, |T[i]|). Line 4: likewise for R[i] = V − T[i] with α_R.
        let t_subsets = partition(&t_elems, alpha_t_star, strategy, &mut rng_state);
        let r_subsets = partition(&r_elems, alpha_r, strategy, &mut rng_state);
        // Lines 5–10: the cross product of subsets, padding receivers.
        for ts in &t_subsets {
            let t_set = BitSet::from_iter(n, ts.iter().copied());
            for rs in &r_subsets {
                let mut r_set = BitSet::from_iter(n, rs.iter().copied());
                // Line 8: pad to exactly α_R receivers with nodes from
                // V_n − T̄[k] (choosing the smallest indices not yet used).
                if r_set.len() < alpha_r {
                    for v in 0..n {
                        if r_set.len() >= alpha_r {
                            break;
                        }
                        if !t_set.contains(v) && !r_set.contains(v) {
                            r_set.insert(v);
                        }
                    }
                }
                debug_assert_eq!(r_set.len(), alpha_r);
                t_bar.push(t_set.clone());
                r_bar.push(r_set);
                slot_origin.push(i);
            }
        }
    }
    Construction {
        schedule: Schedule::new(n, t_bar, r_bar),
        alpha_t_star,
        slot_origin,
    }
}

/// Divides `elements` into `⌈m/s⌉` covering subsets of size `min(s, m)`.
///
/// Subsets may overlap (the paper permits non-disjoint divisions); every
/// element appears in at least one subset, and every subset has the exact
/// size `min(s, m)` so that the constructed slots meet the Theorem-4
/// equality condition.
pub fn partition(
    elements: &[usize],
    s: usize,
    strategy: PartitionStrategy,
    rng_state: &mut u64,
) -> Vec<Vec<usize>> {
    assert!(s >= 1, "subset size must be positive");
    let m = elements.len();
    if m == 0 {
        return Vec::new();
    }
    let size = s.min(m);
    let k = m.div_ceil(size);
    let order: Vec<usize> = match strategy {
        PartitionStrategy::RoundRobin => {
            // Rotate the starting element a little further on every call so
            // the wraparound overlap (the elements that appear twice when
            // size ∤ m) lands on different nodes in different slots — this
            // is what makes the division balanced *across* the frame, not
            // just within one slot (§7's energy-balance remark).
            let mut v = elements.to_vec();
            v.rotate_left((*rng_state % m as u64) as usize);
            *rng_state = rng_state.wrapping_add(1 + size as u64);
            v
        }
        PartitionStrategy::Randomized { .. } => {
            let mut v = elements.to_vec();
            // Fisher-Yates with splitmix64 steps.
            for i in (1..v.len()).rev() {
                *rng_state = rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = *rng_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                v.swap(i, (z % (i as u64 + 1)) as usize);
            }
            v
        }
        _ => elements.to_vec(),
    };
    (0..k)
        .map(|j| match strategy {
            PartitionStrategy::Contiguous => {
                let start = (j * size).min(m - size);
                order[start..start + size].to_vec()
            }
            PartitionStrategy::RoundRobin | PartitionStrategy::Randomized { .. } => {
                (0..size).map(|o| order[(j * size + o) % m]).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::is_topology_transparent;
    use crate::throughput::{average_throughput, min_throughput};
    use ttdc_combinatorics::CoverFreeFamily;

    fn polynomial_schedule(q: usize, k: u32, n: u64) -> Schedule {
        let gf = ttdc_combinatorics::Gf::new(q).unwrap();
        Schedule::from_cff(&CoverFreeFamily::from_polynomials(&gf, k, n))
    }

    const STRATEGIES: [PartitionStrategy; 3] = [
        PartitionStrategy::Contiguous,
        PartitionStrategy::RoundRobin,
        PartitionStrategy::Randomized { seed: 42 },
    ];

    #[test]
    fn partition_sizes_and_coverage() {
        let elems: Vec<usize> = vec![3, 5, 8, 9, 12, 20, 21];
        for strat in STRATEGIES {
            let mut st = 7u64;
            for s in 1..=8usize {
                let parts = partition(&elems, s, strat, &mut st);
                let size = s.min(elems.len());
                assert_eq!(parts.len(), elems.len().div_ceil(size), "s={s}");
                for p in &parts {
                    assert_eq!(p.len(), size, "exact subset size, s={s} {strat:?}");
                    assert!(p.iter().all(|e| elems.contains(e)));
                    // No element repeated inside one subset.
                    let mut q = p.clone();
                    q.sort_unstable();
                    q.dedup();
                    assert_eq!(q.len(), p.len(), "duplicates in subset, {strat:?}");
                }
                // Coverage.
                for e in &elems {
                    assert!(
                        parts.iter().any(|p| p.contains(e)),
                        "element {e} dropped (s={s}, {strat:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_round_robin_is_balanced() {
        let elems: Vec<usize> = (0..10).collect();
        let mut st = 0u64;
        let parts = partition(&elems, 4, PartitionStrategy::RoundRobin, &mut st);
        // k = 3 subsets of size 4 → 12 appearances over 10 elements: each
        // element appears once or twice.
        let mut counts = vec![0usize; 10];
        for p in &parts {
            for &e in p {
                counts[e] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 1 || c == 2), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 12);
    }

    #[test]
    fn partition_empty_input() {
        let mut st = 0;
        assert!(partition(&[], 3, PartitionStrategy::Contiguous, &mut st).is_empty());
    }

    #[test]
    fn partition_randomized_deterministic_in_seed() {
        let elems: Vec<usize> = (0..9).collect();
        let (mut s1, mut s2) = (5u64, 5u64);
        let a = partition(
            &elems,
            4,
            PartitionStrategy::Randomized { seed: 5 },
            &mut s1,
        );
        let b = partition(
            &elems,
            4,
            PartitionStrategy::Randomized { seed: 5 },
            &mut s2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn theorem6_constructed_schedule_is_topology_transparent() {
        // q = 5, k = 1 schedule: transparent for D ≤ 4, 25 nodes.
        let ns = polynomial_schedule(5, 1, 25);
        for d in [2usize, 3] {
            assert!(is_topology_transparent(&ns, d), "precondition");
            for (at, ar) in [(2usize, 3usize), (3, 5), (1, 1), (5, 20)] {
                for strat in STRATEGIES {
                    let c = construct(&ns, d, at, ar, strat);
                    assert!(
                        c.schedule.is_alpha_schedule(at, ar),
                        "α-constraint d={d} at={at} ar={ar} {strat:?}"
                    );
                    assert!(
                        is_topology_transparent(&c.schedule, d),
                        "transparency d={d} at={at} ar={ar} {strat:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn constructed_slots_have_exact_receiver_count() {
        let ns = polynomial_schedule(5, 1, 25);
        let c = construct(&ns, 2, 3, 4, PartitionStrategy::RoundRobin);
        for i in 0..c.schedule.frame_length() {
            assert_eq!(c.schedule.receivers(i).len(), 4, "slot {i}");
            assert!(c.schedule.transmitters(i).len() <= c.alpha_t_star);
        }
    }

    #[test]
    fn theorem7_frame_length_formula() {
        let ns = polynomial_schedule(5, 1, 25);
        let at_star = 2usize;
        let ar = 3usize;
        let c = construct_exact(&ns, at_star, ar, PartitionStrategy::Contiguous);
        let expected: usize = ns
            .t_sizes()
            .iter()
            .map(|&ti| ti.div_ceil(at_star) * (25 - ti).div_ceil(ar))
            .sum();
        assert_eq!(c.schedule.frame_length(), expected);
        assert_eq!(c.slot_origin.len(), expected);
    }

    #[test]
    fn slot_origin_is_monotone_and_in_range() {
        let ns = polynomial_schedule(3, 1, 9);
        let c = construct_exact(&ns, 1, 2, PartitionStrategy::Contiguous);
        assert!(c.slot_origin.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.slot_origin.iter().all(|&o| o < ns.frame_length()));
    }

    #[test]
    fn min_throughput_slots_preserved_per_frame() {
        // Theorem 9's core step: per frame, the constructed schedule has at
        // least as many guaranteed slots per (x, y, S) as the original.
        let ns = polynomial_schedule(4, 1, 16);
        let d = 3;
        let c = construct(&ns, d, 2, 4, PartitionStrategy::RoundRobin);
        let orig = min_throughput(&ns, d) * ns.frame_length() as f64;
        let new = min_throughput(&c.schedule, d) * c.schedule.frame_length() as f64;
        assert!(
            new >= orig - 1e-9,
            "guaranteed slots per frame dropped: {new} < {orig}"
        );
    }

    #[test]
    fn average_throughput_independent_of_strategy() {
        // §6: the division choice does not affect the average throughput.
        let ns = polynomial_schedule(5, 1, 25);
        let d = 2;
        let thr: Vec<f64> = STRATEGIES
            .iter()
            .map(|&s| average_throughput(&construct(&ns, d, 3, 4, s).schedule, d))
            .collect();
        assert!((thr[0] - thr[1]).abs() < 1e-12);
        assert!((thr[0] - thr[2]).abs() < 1e-12);
    }

    #[test]
    fn construct_exact_gives_exact_transmitter_count_when_feasible() {
        // |T[i]| = 5 for the full q=5 polynomial schedule; α_T' = 5 divides
        // exactly, so every constructed slot has exactly 5 transmitters.
        let ns = polynomial_schedule(5, 1, 25);
        let c = construct_exact(&ns, 5, 10, PartitionStrategy::Contiguous);
        for i in 0..c.schedule.frame_length() {
            assert_eq!(c.schedule.transmitters(i).len(), 5);
            assert_eq!(c.schedule.receivers(i).len(), 10);
        }
    }

    #[test]
    #[should_panic(expected = "non-sleeping")]
    fn sleeping_input_rejected() {
        let t = vec![BitSet::from_iter(4, [0])];
        let r = vec![BitSet::from_iter(4, [1])];
        let s = Schedule::new(4, t, r);
        construct_exact(&s, 1, 1, PartitionStrategy::Contiguous);
    }

    #[test]
    #[should_panic(expected = "α_T* + α_R ≤ n")]
    fn oversubscribed_alphas_rejected() {
        let ns = polynomial_schedule(3, 1, 9);
        construct_exact(&ns, 5, 5, PartitionStrategy::Contiguous);
    }
}
