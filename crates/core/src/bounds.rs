//! Upper bounds on average worst-case throughput (Theorems 3 and 4).
//!
//! * **Theorem 3** — over *all* schedules for `N_n^D`, the average
//!   throughput is at most `Thr* = α_T*·C(n−α_T*, D) / (n·C(n−1, D))` with
//!   `α_T* ∈ {⌊(n−D)/(D+1)⌋, ⌈(n−D)/(D+1)⌉}`, attained exactly by
//!   non-sleeping schedules with `|T[i]| = α_T*` in every slot.
//! * **Theorem 4** — over `(α_T, α_R)`-schedules, the bound becomes
//!   `Thr*_{α_R,α_T} = α_R·α_T*·C(n−α_T*−1, D−1) / (n(n−1)C(n−2, D−1))`
//!   with `α_T* = min{α_T, α}`, `α ∈ {⌊(n−D)/D⌋, ⌈(n−D)/D⌉}`, attained
//!   exactly when `|T[i]| = α_T*` and `|R[i]| = α_R` in every slot.

use ttdc_util::binomial_ratio;

/// The Theorem-3 optimum for general schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GeneralBound {
    /// The optimal per-slot transmitter count `α_T*` (≈ `(n−D)/(D+1)`).
    pub alpha_t_star: usize,
    /// The tight bound `Thr* = g_{n,D}(α_T*)`.
    pub thr_star: f64,
    /// The looser closed-form bound `nD^D / ((n−D)(D+1)^(D+1))`.
    pub loose: f64,
}

/// Theorem 3: bound and optimal transmitter count for general schedules.
pub fn general_bound(n: usize, d: usize) -> GeneralBound {
    assert!(d >= 1 && d < n, "need 1 ≤ D < n");
    let alpha = crate::gfunc::g_argmax(n, d);
    GeneralBound {
        alpha_t_star: alpha,
        thr_star: crate::gfunc::g(n, d, alpha),
        loose: crate::gfunc::g_upper_bound(n, d),
    }
}

/// The Theorem-4 optimum for `(α_T, α_R)`-schedules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AlphaBound {
    /// The unconstrained per-slot optimum `α` (≈ `(n−D)/D`).
    pub alpha_unconstrained: usize,
    /// The constrained optimum `α_T* = min{α_T, α}`.
    pub alpha_t_star: usize,
    /// The tight bound `Thr*_{α_R, α_T}`.
    pub thr_star: f64,
    /// The looser closed-form bound `α_R(n−1)(D−1)^(D−1) / (n(n−D)D^D)`.
    pub loose: f64,
}

/// The per-slot transmitter objective of Theorem 4:
/// `h(x) = x·C(n−x−1, D−1) / ((n−1)·C(n−2, D−1)) = g_{n−1,D−1}(x)·(…)` —
/// the factor multiplying `α_R/n` in the throughput of a schedule with
/// `x` transmitters and `α_R` receivers per slot.
pub fn transmitter_objective(n: usize, d: usize, x: usize) -> f64 {
    assert!(d >= 1 && d < n && x < n);
    x as f64 / (n - 1) as f64 * binomial_ratio((n - x - 1) as u64, (n - 2) as u64, (d - 1) as u64)
}

/// Theorem 4: bound and optimal transmitter count for
/// `(α_T, α_R)`-schedules. Requires `α_T ≥ 1`, `α_R ≥ 1`, `α_T + α_R ≤ n`.
pub fn alpha_bound(n: usize, d: usize, alpha_t: usize, alpha_r: usize) -> AlphaBound {
    assert!(d >= 1 && d < n, "need 1 ≤ D < n");
    assert!(alpha_t >= 1 && alpha_r >= 1, "need α_T, α_R ≥ 1");
    assert!(alpha_t + alpha_r <= n, "need α_T + α_R ≤ n");
    // α maximises x·C(n−x−1, D−1) over {⌊(n−D)/D⌋, ⌈(n−D)/D⌉} (clamped so
    // that a zero-transmitter "optimum" is never selected).
    let lo = ((n - d) / d).max(1).min(n - 1);
    let hi = (n - d).div_ceil(d).max(1).min(n - 1);
    let alpha = if transmitter_objective(n, d, lo) >= transmitter_objective(n, d, hi) {
        lo
    } else {
        hi
    };
    let alpha_t_star = alpha_t.min(alpha);
    let thr_star = alpha_r as f64 / n as f64 * transmitter_objective(n, d, alpha_t_star);
    let loose = if d == 1 {
        // (D−1)^(D−1) = 0^0 = 1.
        alpha_r as f64 * (n - 1) as f64 / (n as f64 * (n - 1) as f64)
    } else {
        let (nf, df) = (n as f64, d as f64);
        alpha_r as f64 * (nf - 1.0) * (df - 1.0).powf(df - 1.0) / (nf * (nf - df) * df.powf(df))
    };
    AlphaBound {
        alpha_unconstrained: alpha,
        alpha_t_star,
        thr_star,
        loose,
    }
}

/// The best `(α_T, α_R)` split under a duty-cycle budget.
///
/// An operator usually has an *energy* target — "no more than β of the
/// network awake per slot" — not separate transmitter/receiver budgets.
/// Theorem 4 turns that into an allocation problem: over all
/// `α_T + α_R ≤ ⌊β·n⌋`, pick the split maximising `Thr*_{α_R, α_T}`.
/// Since the bound is linear in `α_R` and saturates in `α_T` at
/// `α ≈ (n−D)/D`, the optimum gives the transmitters only what helps and
/// the receivers everything else — but the exact integer split is what
/// this function computes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BudgetAllocation {
    /// Chosen transmitter budget.
    pub alpha_t: usize,
    /// Chosen receiver budget.
    pub alpha_r: usize,
    /// The Theorem-4 bound at that split.
    pub thr_star: f64,
}

/// Maximises the Theorem-4 bound subject to `α_T + α_R ≤ ⌊duty·n⌋`
/// (`α_T, α_R ≥ 1`). Returns `None` if the budget cannot fit even
/// `(1, 1)`.
pub fn optimize_budget(n: usize, d: usize, duty: f64) -> Option<BudgetAllocation> {
    assert!(d >= 1 && d < n, "need 1 ≤ D < n");
    assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
    let total = (duty * n as f64).floor() as usize;
    if total < 2 {
        return None;
    }
    let total = total.min(n);
    let mut best: Option<BudgetAllocation> = None;
    for at in 1..total {
        let ar = total - at;
        let b = alpha_bound(n, d, at, ar);
        // Spending beyond α_T* on transmitters is pure waste; skip splits
        // whose cap doesn't bind the evaluation anyway (they are dominated
        // by at = α_T* with the freed slots moved to α_R).
        let cand = BudgetAllocation {
            alpha_t: at,
            alpha_r: ar,
            thr_star: b.thr_star,
        };
        if best.is_none_or(|b| cand.thr_star > b.thr_star) {
            best = Some(cand);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;
    use crate::throughput::average_throughput;
    use ttdc_util::BitSet;

    #[test]
    fn theorem3_bound_dominates_all_uniform_schedules() {
        // Any non-sleeping schedule with fixed |T[i]| = x has Thr = g(x);
        // the bound must dominate every x and be attained at α_T*.
        for n in [6usize, 10, 17, 25] {
            for d in 1..=4usize {
                if d >= n {
                    continue;
                }
                let b = general_bound(n, d);
                for x in 0..n {
                    assert!(crate::gfunc::g(n, d, x) <= b.thr_star + 1e-12);
                }
                assert!((crate::gfunc::g(n, d, b.alpha_t_star) - b.thr_star).abs() < 1e-15);
                assert!(b.thr_star <= b.loose + 1e-12);
            }
        }
    }

    #[test]
    fn theorem3_equality_for_optimal_non_sleeping_schedule() {
        // n = 9, D = 2: α_T* = ⌊7/3⌋ or ⌈7/3⌉. Build a non-sleeping
        // schedule with exactly α_T* transmitters per slot and check the
        // closed-form throughput meets the bound.
        let (n, d) = (9usize, 2usize);
        let b = general_bound(n, d);
        let a = b.alpha_t_star;
        // Rotating blocks of size a.
        let t: Vec<BitSet> = (0..n)
            .map(|i| BitSet::from_iter(n, (0..a).map(|j| (i + j) % n)))
            .collect();
        let s = Schedule::non_sleeping(n, t);
        let thr = average_throughput(&s, d);
        assert!(
            (thr - b.thr_star).abs() < 1e-12,
            "thr {thr} vs bound {}",
            b.thr_star
        );
    }

    #[test]
    fn theorem3_random_schedules_never_exceed_bound() {
        // Deterministic pseudo-random schedules (varying |T[i]|) must stay
        // below the bound.
        let (n, d) = (12usize, 3usize);
        let b = general_bound(n, d);
        for seed in 0..20usize {
            let l = 4 + seed % 5;
            let t: Vec<BitSet> = (0..l)
                .map(|i| {
                    let size = 1 + (seed * 7 + i * 13) % (n - 1);
                    BitSet::from_iter(n, (0..size).map(|j| (seed + i * 3 + j * 5) % n))
                })
                .collect();
            let s = Schedule::non_sleeping(n, t);
            assert!(
                average_throughput(&s, d) <= b.thr_star + 1e-12,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn theorem4_alpha_star_caps_at_alpha_t() {
        let b = alpha_bound(20, 2, 3, 5);
        // Unconstrained α ≈ (20−2)/2 = 9 > α_T = 3, so the cap binds.
        assert_eq!(b.alpha_unconstrained, 9);
        assert_eq!(b.alpha_t_star, 3);

        let b2 = alpha_bound(20, 2, 15, 5);
        assert_eq!(
            b2.alpha_t_star, 9,
            "unconstrained optimum when α_T is generous"
        );
    }

    #[test]
    fn theorem4_bound_attained_by_exact_count_schedule() {
        // n = 8, D = 2, α_T = 3, α_R = 4: build a schedule with exactly
        // α_T* transmitters and α_R receivers in every slot.
        let (n, d, at, ar) = (8usize, 2usize, 3usize, 4usize);
        let b = alpha_bound(n, d, at, ar);
        let a = b.alpha_t_star;
        let t: Vec<BitSet> = (0..n)
            .map(|i| BitSet::from_iter(n, (0..a).map(|j| (i + j) % n)))
            .collect();
        let r: Vec<BitSet> = (0..n)
            .map(|i| BitSet::from_iter(n, (0..ar).map(|j| (i + a + j) % n)))
            .collect();
        let s = Schedule::new(n, t, r);
        assert!(s.is_alpha_schedule(at, ar));
        let thr = average_throughput(&s, d);
        assert!(
            (thr - b.thr_star).abs() < 1e-12,
            "thr {thr} vs bound {}",
            b.thr_star
        );
    }

    #[test]
    fn theorem4_dominates_alpha_schedules() {
        // Sweep hand-built (α_T, α_R)-schedules with varying per-slot
        // counts; none may exceed the Theorem-4 bound.
        let (n, d, at, ar) = (10usize, 3usize, 4usize, 5usize);
        let b = alpha_bound(n, d, at, ar);
        for l in 2..6usize {
            let t: Vec<BitSet> = (0..l)
                .map(|i| {
                    let size = 1 + (i * 3) % at;
                    BitSet::from_iter(n, (0..size).map(|j| (i + j * 2) % n))
                })
                .collect();
            let r: Vec<BitSet> = (0..l)
                .map(|i| {
                    let t_i = &t[i];
                    let size = 1 + (i * 5) % ar;
                    BitSet::from_iter(n, (0..n).filter(|v| !t_i.contains(*v)).take(size))
                })
                .collect();
            let s = Schedule::new(n, t, r);
            assert!(s.is_alpha_schedule(at, ar));
            assert!(average_throughput(&s, d) <= b.thr_star + 1e-12, "L={l}");
        }
    }

    #[test]
    fn theorem4_loose_bound_dominates_tight() {
        for n in [6usize, 12, 30] {
            for d in 1..=4 {
                if d >= n {
                    continue;
                }
                for at in 1..=(n / 2) {
                    let ar = n - at;
                    let b = alpha_bound(n, d, at, ar);
                    assert!(
                        b.thr_star <= b.loose + 1e-12,
                        "n={n} d={d} at={at}: {} > {}",
                        b.thr_star,
                        b.loose
                    );
                }
            }
        }
    }

    #[test]
    fn theorem4_monotone_in_alpha_r() {
        // "The number of receivers should be as large as possible."
        let mut last = 0.0;
        for ar in 1..=16usize {
            let b = alpha_bound(20, 3, 4, ar);
            assert!(b.thr_star >= last);
            last = b.thr_star;
        }
    }

    #[test]
    fn theorem4_saturates_in_alpha_t() {
        // Increasing α_T beyond the unconstrained optimum must not help.
        let base = alpha_bound(20, 3, 6, 5); // α ≈ 17/3 ≈ 6
        let more = alpha_bound(20, 3, 12, 5);
        assert!(more.thr_star <= base.thr_star + 1e-15);
    }

    #[test]
    #[should_panic(expected = "α_T + α_R ≤ n")]
    fn alpha_sum_exceeding_n_rejected() {
        alpha_bound(8, 2, 5, 4);
    }

    #[test]
    fn degenerate_small_network() {
        // n = 3, D = 1: α = ⌊2/1⌋ = 2, α_T* = min(α_T, 2).
        let b = alpha_bound(3, 1, 1, 1);
        assert_eq!(b.alpha_t_star, 1);
        assert!(b.thr_star > 0.0);
    }

    #[test]
    fn budget_optimizer_never_wastes_transmitters() {
        let (n, d) = (30usize, 3usize);
        for duty in [0.1f64, 0.2, 0.4, 0.8] {
            let a = optimize_budget(n, d, duty).unwrap();
            let total = (duty * n as f64).floor() as usize;
            assert!(a.alpha_t + a.alpha_r <= total);
            // Exhaustive check: no other split under the budget beats it.
            for at in 1..total {
                let ar = total - at;
                if at + ar <= n {
                    assert!(
                        alpha_bound(n, d, at, ar).thr_star <= a.thr_star + 1e-15,
                        "duty {duty}: ({at},{ar}) beats ({},{})",
                        a.alpha_t,
                        a.alpha_r
                    );
                }
            }
            // The optimum never allocates transmitters past the saturation
            // point α (the rest is better spent listening).
            let b = alpha_bound(n, d, a.alpha_t, a.alpha_r);
            assert!(a.alpha_t <= b.alpha_unconstrained.max(1));
        }
    }

    #[test]
    fn budget_optimizer_monotone_in_budget() {
        let mut last = 0.0;
        for pct in 1..=10usize {
            let duty = pct as f64 / 10.0;
            if let Some(a) = optimize_budget(24, 2, duty) {
                assert!(a.thr_star >= last - 1e-15, "duty {duty}");
                last = a.thr_star;
            }
        }
    }

    #[test]
    fn budget_too_small_returns_none() {
        assert!(optimize_budget(20, 2, 0.05).is_none(), "⌊0.05·20⌋ = 1 < 2");
        assert!(optimize_budget(20, 2, 0.0).is_none());
        assert!(optimize_budget(20, 2, 0.1).is_some());
    }
}
