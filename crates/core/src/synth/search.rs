//! Parallel branch-and-bound minimum set cover over candidate slots.
//!
//! The search state is a partial schedule (a set of chosen candidate ids)
//! whose demand coverage lives in a [`CoverCounter`]: descending adds a
//! candidate's coverage with [`CoverCounter::add_tracked`], backtracking
//! unwinds it through the O(1)-mark undo trail — no rescan of the partial
//! solution. Branching picks the uncovered demand with the fewest
//! remaining suppliers (a zero-supplier demand refutes the subtree), and
//! sibling branches ban earlier-tried candidates so no slot set is visited
//! twice.
//!
//! **Bound hierarchy.** Three admissible lower bounds on the slots any
//! completion still needs, in increasing strength and cost:
//!
//! * *Ceiling*: `⌈deficit / max_gain⌉` — one division.
//! * *Matching*: a greedy packing of uncovered demands no single candidate
//!   can co-cover ([`ttdc_util::greedy_packing`] over the precomputed
//!   [`CandidateSpace::reach`] conflict masks); each packed demand needs
//!   its own slot. Always `≥` the ceiling (the maximum of both is
//!   returned).
//! * *LP*: an exact scaled-integer dual-ascent on the residual set-cover
//!   LP ([`ttdc_util::DualAscent`]), restricted to unbanned suppliers.
//!   Strongest but priced per-supplier, so [`SearchOptions::lp_depth`]
//!   confines it to shallow depths where cutting a subtree pays most.
//!
//! A subtree is cut only when `depth + bound` *strictly* exceeds the best
//! known length, so every optimum-length solution survives pruning
//! regardless of incumbent timing — the keystone of cross-thread
//! determinism.
//!
//! **Dominance.** When branching, a supplier whose residual coverage is a
//! subset of an earlier (lower-id) supplier's residual coverage is
//! eliminated: replacing it by the dominator turns any cover through it
//! into one that is no longer and lexicographically smaller, so the
//! `(len, lex)`-minimal winner never routes through a dominated candidate.
//! Dominance elimination is therefore *winner-preserving*, not just
//! length-preserving.
//!
//! **Symmetry.** At the root, candidates covering the branch demand are
//! deduplicated by their class signature under the demand's stabilizer
//! (node classes `{x}`, `{y}`, `Y∖{y}`, rest): two candidates with equal
//! per-class transmit/receive counts are images of each other under a
//! node relabeling that maps the demand space onto itself, so their
//! subtrees contain covers of exactly the same lengths. With
//! [`SearchOptions::sub_symmetry`] the same idea extends below the root:
//! classes are refined by membership in every chosen slot's `T`/`R`, so
//! the relabeling also fixes the partial schedule. Sub-root orbit pruning
//! preserves the optimum *length* but may swap the winning representative
//! when several non-isomorphic optima exist, so it defaults off and is
//! reserved for deep campaign runs (results stay bit-identical across
//! thread counts either way — elimination depends only on the trail).
//!
//! **Deterministic incumbent.** A solution is the *sorted* vector of its
//! candidate ids; solutions compare by `(length, lex order of ids)`. Each
//! root branch reports its branch-local minimum (found in canonical DFS
//! order), and the ordered reduction over branches takes the global
//! minimum — a rule with no dependence on thread count or completion
//! order. The shared atomic incumbent length only tightens pruning of
//! strictly-worse subtrees, so it can accelerate the search but never
//! change its answer. Budgeted branches ignore the shared incumbent
//! entirely: budget cutoffs must not depend on cross-thread timing.

use super::demands::{CandidateSpace, DemandSpace};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ttdc_util::{greedy_packing, BitSet, CoverCounter, DualAscent, LpItem};

/// Which admissible lower bound the pruning rule pays for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundKind {
    /// `⌈deficit / max_gain⌉` — the PR 9 baseline.
    Ceiling,
    /// Greedy conflict packing over [`CandidateSpace::reach`]; dominates
    /// the ceiling bound.
    Matching,
    /// Matching everywhere plus the dual-ascent LP bound at depths below
    /// [`SearchOptions::lp_depth`].
    Lp,
}

/// Knobs for [`minimum_cover`]. Defaults give the full pruned,
/// symmetry-reduced, winner-preserving exact search.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Apply lower-bound pruning (off = the exhaustive baseline
    /// `bench_synth` compares against).
    pub prune: bool,
    /// Which bound the pruning rule uses (ignored when `prune` is off).
    pub bound: BoundKind,
    /// Depths strictly below this pay for the LP bound (with
    /// [`BoundKind::Lp`]); deeper nodes fall back to the matching bound.
    pub lp_depth: usize,
    /// Dual-ascent sweeps after the fractional seed.
    pub lp_passes: usize,
    /// Eliminate branch candidates residual-dominated by an earlier one
    /// (winner-preserving).
    pub dominance: bool,
    /// Cut subtrees that can at best *tie* the branch-local incumbent's
    /// length but cannot beat it lexicographically (winner-preserving:
    /// only completions strictly worse under the `(len, lex)` rule are
    /// discarded; depends on branch-local state only, so thread-count
    /// determinism is unaffected).
    pub lex_prune: bool,
    /// Collapse root branches that are node-relabelings of each other.
    pub symmetry: bool,
    /// Extend orbit elimination below the root (length-preserving only —
    /// the winning representative may change; off by default).
    pub sub_symmetry: bool,
    /// Per-root-branch node budget; `None` = run to exactness. When set,
    /// branches ignore the shared incumbent (budget cutoffs must not
    /// depend on cross-thread timing), so results stay deterministic.
    pub max_nodes: Option<u64>,
    /// Known upper bound on the optimum (e.g. a catalog entry being
    /// resumed): seeds the incumbent length, tightening pruning from the
    /// start. The bound itself is not returned as a solution.
    pub incumbent_len: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            prune: true,
            bound: BoundKind::Lp,
            // Effectively "LP everywhere" for tractable instances: per-node
            // LP cost shrinks with the residual deficit, and on the hard
            // bench points paying it at every depth is ~10× fewer nodes
            // *and* faster in wall-clock than a shallow cutoff.
            lp_depth: 64,
            lp_passes: 1,
            dominance: true,
            lex_prune: true,
            symmetry: true,
            sub_symmetry: false,
            max_nodes: None,
            incumbent_len: None,
        }
    }
}

impl SearchOptions {
    /// Provenance string recorded in catalog headers: the knobs that
    /// shape the search tree (bound hierarchy + elimination rules).
    pub fn config_string(&self) -> String {
        let bound = match self.bound {
            BoundKind::Ceiling => "ceiling",
            BoundKind::Matching => "matching",
            BoundKind::Lp => "lp",
        };
        format!(
            "bound={} lp_depth={} lp_passes={} dominance={} sub_symmetry={}",
            bound, self.lp_depth, self.lp_passes, self.dominance, self.sub_symmetry
        )
    }
}

/// Search effort counters. `nodes`/`pruned` are totals over all branches
/// (they may vary run-to-run at >1 thread — incumbent timing changes what
/// gets pruned — but the winning solution never does).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Subtrees cut by the lower bound.
    pub pruned: u64,
    /// `false` when some branch hit its node budget: the result is the
    /// best found, not a proven optimum.
    pub exact: bool,
    /// Root branches explored (after symmetry deduplication).
    pub root_branches: usize,
    /// Root branches before symmetry deduplication.
    pub root_branches_total: usize,
}

/// A cover: sorted candidate ids. Compares by `(len, lex)` — the
/// deterministic incumbent rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverSolution {
    /// Candidate ids, ascending.
    pub slots: Vec<u32>,
}

impl CoverSolution {
    /// The deterministic incumbent rule: `(len, lex)` strict order.
    pub fn better_than(&self, other: &CoverSolution) -> bool {
        (self.slots.len(), &self.slots) < (other.slots.len(), &other.slots)
    }
}

/// Greedy max-marginal-gain cover (tie: lowest candidate id). Always
/// succeeds — every demand has at least one supplier — and seeds the
/// incumbent so pruning bites from the first branch.
pub fn greedy_cover(space: &DemandSpace, cands: &CandidateSpace) -> CoverSolution {
    let target = BitSet::from_iter(space.len(), 0..space.len());
    let mut counter = CoverCounter::new(space.len());
    counter.set_target(&target);
    let mut slots = Vec::new();
    while !counter.is_covered() {
        let mut best = usize::MAX;
        let mut best_gain = 0;
        for (c, cand) in cands.cands.iter().enumerate() {
            let gain = cand.coverage.intersection_len(counter.uncovered());
            if gain > best_gain {
                best_gain = gain;
                best = c;
            }
        }
        assert!(best != usize::MAX, "uncoverable demand (no supplier)");
        counter.add(&cands.cands[best].coverage);
        slots.push(best as u32);
    }
    slots.sort_unstable();
    CoverSolution { slots }
}

/// The PR 9 baseline bound: `⌈deficit / max_gain⌉`.
#[inline]
pub fn ceiling_bound(deficit: usize, max_gain: usize) -> usize {
    deficit.div_ceil(max_gain)
}

/// Greedy conflict-packing bound over the uncovered demands, maxed with
/// the ceiling bound so it dominates it unconditionally. `blocked` is
/// reusable scratch over the demand universe.
pub fn matching_bound(cands: &CandidateSpace, unc: &BitSet, blocked: &mut BitSet) -> usize {
    greedy_packing(unc, &cands.reach, blocked).max(ceiling_bound(unc.len(), cands.max_gain))
}

/// Dual-ascent LP bound on the residual cover restricted to unbanned
/// suppliers. Exact integer arithmetic throughout — see
/// [`ttdc_util::lp`] for the admissibility argument. Returns
/// [`DualAscent::INFEASIBLE`] when an uncovered demand has lost every
/// supplier to bans.
pub fn lp_bound(
    cands: &CandidateSpace,
    unc: &BitSet,
    banned: &[bool],
    passes: usize,
    lp: &mut DualAscent,
) -> usize {
    let mut arena: Vec<u32> = Vec::new();
    let mut items: Vec<LpItem> = Vec::new();
    for i in unc.iter() {
        let start = arena.len() as u32;
        let mut max_gain = 0usize;
        for &c in &cands.suppliers[i] {
            if banned[c as usize] {
                continue;
            }
            max_gain = max_gain.max(cands.cands[c as usize].coverage.intersection_len(unc));
            arena.push(c);
        }
        items.push(LpItem {
            start,
            len: arena.len() as u32 - start,
            max_gain: max_gain as u32,
        });
    }
    lp.bound(&arena, &items, passes)
}

/// `true` iff `a`'s residual coverage (within `unc`) is a subset of
/// `b`'s — the word-level dominance test, allocation-free.
#[inline]
fn residual_dominated(a: &BitSet, b: &BitSet, unc: &BitSet) -> bool {
    a.words()
        .iter()
        .zip(b.words())
        .zip(unc.words())
        .all(|((&aw, &bw), &uw)| aw & uw & !bw == 0)
}

/// Class signature of a candidate under the root demand's stabilizer:
/// per-class (`x`, `y`, `Y∖{y}`, rest) transmit and receive counts.
fn root_signature(space: &DemandSpace, cands: &CandidateSpace, root: usize, c: u32) -> [usize; 8] {
    let dem = &space.demands()[root];
    let cand = &cands.cands[c as usize];
    let n = space.num_nodes();
    let mut sig = [0usize; 8];
    for v in 0..n {
        let class = if v == dem.x {
            0
        } else if v == dem.y {
            1
        } else if dem.group.contains(v) {
            2
        } else {
            3
        };
        if cand.t.contains(v) {
            sig[class] += 1;
        }
        if cand.r.contains(v) {
            sig[4 + class] += 1;
        }
    }
    sig
}

/// Deepest trail length whose slot-membership bits still fit a `u64`
/// color alongside the 2-bit demand class.
const MAX_SYMMETRY_DEPTH: usize = 30;

struct Worker<'a> {
    space: &'a DemandSpace,
    cands: &'a CandidateSpace,
    opts: &'a SearchOptions,
    shared_len: &'a AtomicUsize,
    counter: CoverCounter,
    banned: Vec<bool>,
    chosen: Vec<u32>,
    best: Option<CoverSolution>,
    /// Numeric incumbent the branch started from (greedy / resume seed).
    seed_len: usize,
    nodes: u64,
    pruned: u64,
    exhausted: bool,
    /// Scratch for the matching bound's packing.
    blocked: BitSet,
    /// Scratch for the LP bound's dual loads.
    lp: DualAscent,
}

impl Worker<'_> {
    fn bound_len(&self) -> usize {
        let local = self
            .best
            .as_ref()
            .map_or(self.seed_len, |b| b.slots.len().min(self.seed_len));
        if self.opts.max_nodes.is_some() {
            local
        } else {
            local.min(self.shared_len.load(Ordering::Relaxed))
        }
    }

    /// Admissible lower bound on the slots any completion of this node
    /// still needs, per the configured bound hierarchy.
    fn lower_bound(&mut self, depth: usize) -> usize {
        let mut lower = ceiling_bound(self.counter.deficit(), self.cands.max_gain);
        if matches!(self.opts.bound, BoundKind::Matching | BoundKind::Lp) {
            lower = lower.max(greedy_packing(
                self.counter.uncovered(),
                &self.cands.reach,
                &mut self.blocked,
            ));
        }
        if self.opts.bound == BoundKind::Lp && depth < self.opts.lp_depth {
            lower = lower.max(lp_bound(
                self.cands,
                self.counter.uncovered(),
                &self.banned,
                self.opts.lp_passes,
                &mut self.lp,
            ));
        }
        lower
    }

    /// Trail-refined node color: the branch demand's class plus a
    /// membership bit pair per chosen slot. Permutations preserving every
    /// color class setwise fix the branch demand and the whole partial
    /// schedule, so equal-signature candidates are orbit-equivalent.
    fn node_color(&self, v: usize, branch: usize) -> u64 {
        let dem = &self.space.demands()[branch];
        let mut color = if v == dem.x {
            0u64
        } else if v == dem.y {
            1
        } else if dem.group.contains(v) {
            2
        } else {
            3
        };
        for (k, &s) in self.chosen.iter().enumerate() {
            let cand = &self.cands.cands[s as usize];
            color |= (u64::from(cand.t.contains(v))) << (2 + 2 * k);
            color |= (u64::from(cand.r.contains(v))) << (3 + 2 * k);
        }
        color
    }

    /// Per-color (transmit, receive) counts of candidate `c` — the
    /// sub-root orbit signature, sorted by color for canonical equality.
    fn orbit_signature(&self, branch: usize, c: u32) -> Vec<(u64, u32, u32)> {
        let cand = &self.cands.cands[c as usize];
        let mut sig: Vec<(u64, u32, u32)> = Vec::new();
        for v in 0..self.space.num_nodes() {
            let in_t = cand.t.contains(v);
            let in_r = cand.r.contains(v);
            if !in_t && !in_r {
                continue;
            }
            let color = self.node_color(v, branch);
            match sig.binary_search_by_key(&color, |e| e.0) {
                Ok(p) => {
                    sig[p].1 += u32::from(in_t);
                    sig[p].2 += u32::from(in_r);
                }
                Err(p) => sig.insert(p, (color, u32::from(in_t), u32::from(in_r))),
            }
        }
        sig
    }

    /// Applies orbit and dominance elimination to the branch suppliers,
    /// banning eliminated candidates for this node's whole subtree (the
    /// caller unbans all of `sups` afterwards). Keeps the lowest-id
    /// representative of every orbit / dominance chain.
    fn eliminate(&mut self, branch: usize, sups: &[u32]) -> Vec<u32> {
        let use_sym = self.opts.sub_symmetry && self.chosen.len() <= MAX_SYMMETRY_DEPTH;
        let mut kept: Vec<u32> = Vec::with_capacity(sups.len());
        let mut sigs: Vec<Vec<(u64, u32, u32)>> = Vec::new();
        for &c in sups {
            if use_sym {
                let sig = self.orbit_signature(branch, c);
                if sigs.contains(&sig) {
                    self.banned[c as usize] = true;
                    continue;
                }
                if !self.dominated_by_kept(c, &kept) {
                    sigs.push(sig);
                    kept.push(c);
                } else {
                    self.banned[c as usize] = true;
                }
            } else if self.dominated_by_kept(c, &kept) {
                self.banned[c as usize] = true;
            } else {
                kept.push(c);
            }
        }
        kept
    }

    fn dominated_by_kept(&self, c: u32, kept: &[u32]) -> bool {
        if !self.opts.dominance {
            return false;
        }
        let unc = self.counter.uncovered();
        let cov = &self.cands.cands[c as usize].coverage;
        kept.iter()
            .any(|&k| residual_dominated(cov, &self.cands.cands[k as usize].coverage, unc))
    }

    /// `true` when this node's subtree can no longer beat the branch-local
    /// best under `(len, lex)`. Only fires in the *tie regime* — the
    /// admissible bound says every completion is at least as long as the
    /// local best — where the lex-smallest conceivable completion is
    /// `chosen` merged with the smallest unbanned ids; if even that fails
    /// to beat the best, nothing in the subtree can. Deeper bans only
    /// shrink the options, so the verdict holds for the whole subtree.
    fn lex_hopeless(&self, depth: usize, lower: usize) -> bool {
        let Some(best) = &self.best else {
            return false;
        };
        let blen = best.slots.len();
        if depth + lower != blen {
            return false; // a strictly shorter completion may still exist
        }
        let mut chosen = self.chosen.clone();
        chosen.sort_unstable();
        let need = blen - depth;
        // A tie-length completion adds `need` candidates whose residual
        // coverages union to the whole deficit, and each contributes at
        // most `max_gain` — so every member must cover at least
        // `deficit − (need−1)·max_gain` uncovered demands (and at least
        // one: a zero-gain member could be dropped, beating the
        // admissible bound — impossible). The lex-smallest conceivable
        // fill therefore skips candidates below that threshold.
        let unc = self.counter.uncovered();
        let t_min = self
            .counter
            .deficit()
            .saturating_sub((need - 1) * self.cands.max_gain)
            .max(1);
        let mut fill: Vec<u32> = Vec::with_capacity(need);
        for id in 0..self.cands.cands.len() as u32 {
            if fill.len() == need {
                break;
            }
            if !self.banned[id as usize]
                && chosen.binary_search(&id).is_err()
                && self.cands.cands[id as usize].coverage.intersection_len(unc) >= t_min
            {
                fill.push(id);
            }
        }
        if fill.len() < need {
            return true; // not enough distinct ids left even to tie
        }
        let (mut i, mut j) = (0, 0);
        for &b in &best.slots {
            let m = if i < chosen.len() && (j >= fill.len() || chosen[i] < fill[j]) {
                let v = chosen[i];
                i += 1;
                v
            } else {
                let v = fill[j];
                j += 1;
                v
            };
            if m < b {
                return false; // the subtree can still win the tie
            }
            if m > b {
                return true;
            }
        }
        true // exact tie: cannot *strictly* beat the best
    }

    /// Global dominance pass: bans every unbanned candidate whose residual
    /// coverage is a subset of an earlier unbanned candidate's (keeping the
    /// lowest id of every chain). Returns the banned ids for the caller to
    /// restore. Winner-preserving by the same substitution argument as the
    /// branch-supplier filter.
    fn global_eliminate(&mut self) -> Vec<u32> {
        let mut kept: Vec<u32> = Vec::new();
        let mut eliminated: Vec<u32> = Vec::new();
        for c in 0..self.cands.cands.len() as u32 {
            if self.banned[c as usize] {
                continue;
            }
            if self.dominated_by_kept(c, &kept) {
                self.banned[c as usize] = true;
                eliminated.push(c);
            } else {
                kept.push(c);
            }
        }
        eliminated
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if let Some(budget) = self.opts.max_nodes {
            if self.nodes > budget {
                self.exhausted = true;
                return;
            }
        }
        if self.counter.is_covered() {
            let mut slots = self.chosen.clone();
            slots.sort_unstable();
            let sol = CoverSolution { slots };
            let better = match &self.best {
                Some(b) => sol.better_than(b),
                None => sol.slots.len() <= self.seed_len,
            };
            if better {
                self.shared_len
                    .fetch_min(sol.slots.len(), Ordering::Relaxed);
                self.best = Some(sol);
            }
            return;
        }
        let depth = self.chosen.len();
        let lower = if self.opts.prune {
            self.lower_bound(depth)
        } else {
            1 // not covered ⇒ at least one more slot; keeps ties exact
        };
        if depth + lower > self.bound_len() {
            self.pruned += 1;
            return;
        }
        if self.opts.lex_prune && self.lex_hopeless(depth, lower) {
            self.pruned += 1;
            return;
        }
        let globally_eliminated = if self.opts.dominance {
            self.global_eliminate()
        } else {
            Vec::new()
        };
        // Branch demand: uncovered, fewest unbanned suppliers, tie lowest.
        let mut branch = usize::MAX;
        let mut branch_count = usize::MAX;
        for i in self.counter.uncovered().iter() {
            let count = self.cands.suppliers[i]
                .iter()
                .filter(|&&c| !self.banned[c as usize])
                .count();
            if count < branch_count {
                branch_count = count;
                branch = i;
                if count == 0 {
                    break;
                }
            }
        }
        if branch_count == 0 {
            // Dead end: demand lost all suppliers to bans.
            for &c in &globally_eliminated {
                self.banned[c as usize] = false;
            }
            return;
        }
        let sups: Vec<u32> = self.cands.suppliers[branch]
            .iter()
            .copied()
            .filter(|&c| !self.banned[c as usize])
            .collect();
        let kept: Vec<u32> = if self.opts.dominance || self.opts.sub_symmetry {
            self.eliminate(branch, &sups)
        } else {
            sups.clone()
        };
        let cands = self.cands;
        for &c in &kept {
            if self.exhausted {
                break;
            }
            let mark = self.counter.mark();
            // Coverage is over the full demand set — already a subset of
            // the target, no masking needed.
            self.counter.add_tracked(&cands.cands[c as usize].coverage);
            self.chosen.push(c);
            self.dfs();
            self.chosen.pop();
            self.counter.undo_to(mark);
            self.banned[c as usize] = true;
        }
        for &c in &sups {
            self.banned[c as usize] = false;
        }
        for &c in &globally_eliminated {
            self.banned[c as usize] = false;
        }
    }
}

/// The deterministic root fan-out: branch demand, symmetry-reduced branch
/// candidates, the greedy seed and the numeric incumbent every branch
/// starts from. Computed once, then each branch can run (and be
/// checkpointed) independently — the campaign runner's unit of work.
#[derive(Clone, Debug)]
pub struct RootPlan {
    /// The root branch demand (globally fewest suppliers, tie lowest id).
    pub root: usize,
    /// Branch candidates after symmetry deduplication, ascending.
    pub branch_cands: Vec<u32>,
    /// Supplier count before symmetry deduplication.
    pub root_branches_total: usize,
    /// The greedy seed cover (a valid solution even if every branch is
    /// budget-starved).
    pub greedy: CoverSolution,
    /// `min(greedy length, incumbent_len)` — the numeric incumbent every
    /// branch starts from.
    pub seed_len: usize,
}

/// One root branch's outcome: its branch-local `(len, lex)` minimum (if
/// it beat the seed) plus effort counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BranchResult {
    /// Best cover known to the branch. With lex pruning this starts from
    /// the greedy seed (so it is `Some` even when the subtree held nothing
    /// better); otherwise `None` means nothing beat the seed.
    pub best: Option<CoverSolution>,
    /// Nodes expanded in this branch.
    pub nodes: u64,
    /// Subtrees cut in this branch.
    pub pruned: u64,
    /// `true` when the branch hit its node budget.
    pub exhausted: bool,
}

/// Computes the deterministic root fan-out for `(space, cands, opts)`.
pub fn plan_root(space: &DemandSpace, cands: &CandidateSpace, opts: &SearchOptions) -> RootPlan {
    let greedy = greedy_cover(space, cands);
    let seed_len = greedy
        .slots
        .len()
        .min(opts.incumbent_len.unwrap_or(usize::MAX));
    // Root branch demand: globally fewest suppliers, tie lowest id.
    let root = (0..space.len())
        .min_by_key(|&i| (cands.suppliers[i].len(), i))
        .expect("demand space is never empty");
    let all_sups = &cands.suppliers[root];
    let branch_cands: Vec<u32> = if opts.symmetry {
        let mut seen: Vec<[usize; 8]> = Vec::new();
        let mut kept = Vec::new();
        for &c in all_sups {
            let sig = root_signature(space, cands, root, c);
            if !seen.contains(&sig) {
                seen.push(sig);
                kept.push(c);
            }
        }
        kept
    } else {
        all_sups.clone()
    };
    RootPlan {
        root,
        branch_cands,
        root_branches_total: all_sups.len(),
        greedy,
        seed_len,
    }
}

/// Runs root branch `index` of `plan` to completion (or budget). Branch
/// `i` bans the candidates of branches `0..i` — they were (or will be)
/// fully explored elsewhere, so no slot set is visited twice. `shared_len`
/// is the cross-branch incumbent length; pass a fresh
/// `AtomicUsize::new(plan.seed_len)` to decouple the branch from all
/// others (the campaign runner does, so every checkpointed branch result
/// is independent of execution order and kill history).
pub fn search_root_branch(
    space: &DemandSpace,
    cands: &CandidateSpace,
    opts: &SearchOptions,
    plan: &RootPlan,
    index: usize,
    shared_len: &AtomicUsize,
) -> BranchResult {
    let target = BitSet::from_iter(space.len(), 0..space.len());
    let mut counter = CoverCounter::new(space.len());
    counter.set_target(&target);
    let mut banned = vec![false; cands.cands.len()];
    for &prev in &plan.branch_cands[..index] {
        banned[prev as usize] = true;
    }
    let c = plan.branch_cands[index];
    counter.add(&cands.cands[c as usize].coverage);
    // With lex pruning on, seed the branch-local incumbent with the greedy
    // solution so the tie regime is active from the very first node (the
    // greedy seed is often already optimal in length, and without a
    // concrete incumbent the whole first dive enumerates optimal-length
    // covers un-lex-pruned). The seed is identical for every branch, so
    // branch results stay independent of execution order, and the final
    // reduce starts from the greedy cover anyway, so winners are unchanged.
    let mut w = Worker {
        space,
        cands,
        opts,
        shared_len,
        counter,
        banned,
        chosen: vec![c],
        best: opts.lex_prune.then(|| plan.greedy.clone()),
        seed_len: plan.seed_len,
        nodes: 0,
        pruned: 0,
        exhausted: false,
        blocked: BitSet::new(space.len()),
        lp: DualAscent::new(cands.cands.len()),
    };
    w.dfs();
    BranchResult {
        best: w.best,
        nodes: w.nodes,
        pruned: w.pruned,
        exhausted: w.exhausted,
    }
}

/// Exact (or budgeted) minimum set cover. See the module docs for the
/// determinism argument. Returns the best cover found plus effort stats.
pub fn minimum_cover(
    space: &DemandSpace,
    cands: &CandidateSpace,
    opts: &SearchOptions,
) -> (CoverSolution, SearchStats) {
    let plan = plan_root(space, cands, opts);
    let shared_len = AtomicUsize::new(plan.seed_len);
    let total_nodes = AtomicU64::new(0);
    let total_pruned = AtomicU64::new(0);
    let any_exhausted = AtomicUsize::new(0);

    // One task per root branch; ordered collect keeps the reduction
    // deterministic.
    let branch_bests: Vec<Option<CoverSolution>> = (0..plan.branch_cands.len())
        .collect::<Vec<_>>()
        .into_par_iter()
        .with_min_len(1)
        .map(|i| {
            let r = search_root_branch(space, cands, opts, &plan, i, &shared_len);
            total_nodes.fetch_add(r.nodes, Ordering::Relaxed);
            total_pruned.fetch_add(r.pruned, Ordering::Relaxed);
            if r.exhausted {
                any_exhausted.fetch_add(1, Ordering::Relaxed);
            }
            r.best
        })
        .collect();

    let mut best = plan.greedy.clone();
    for sol in branch_bests.into_iter().flatten() {
        if sol.better_than(&best) {
            best = sol;
        }
    }
    let stats = SearchStats {
        nodes: total_nodes.load(Ordering::Relaxed),
        pruned: total_pruned.load(Ordering::Relaxed),
        exact: any_exhausted.load(Ordering::Relaxed) == 0,
        root_branches: plan.branch_cands.len(),
        root_branches_total: plan.root_branches_total,
    };
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(n: usize, d: usize, at: usize, ar: usize, opts: &SearchOptions) -> (usize, Vec<u32>) {
        let space = DemandSpace::new(n, d);
        let cands = CandidateSpace::new(&space, at, ar);
        let (sol, stats) = minimum_cover(&space, &cands, opts);
        assert!(stats.exact);
        (sol.slots.len(), sol.slots)
    }

    #[test]
    fn pruned_and_exhaustive_agree_on_optimum_length() {
        for (n, d, at, ar) in [(4, 1, 1, 1), (5, 1, 1, 2), (5, 2, 1, 2)] {
            let full = SearchOptions::default();
            let bare = SearchOptions {
                prune: false,
                dominance: false,
                lex_prune: false,
                symmetry: false,
                ..SearchOptions::default()
            };
            let (l1, _) = solve(n, d, at, ar, &full);
            let (l2, _) = solve(n, d, at, ar, &bare);
            assert_eq!(l1, l2, "({n},{d},{at},{ar})");
        }
    }

    #[test]
    fn every_bound_kind_and_dominance_preserve_the_winner() {
        // Bound pruning and dominance elimination are winner-preserving:
        // same (len, lex) winner as the prune-free search under the same
        // root symmetry.
        for (n, d, at, ar) in [(4, 1, 1, 1), (5, 1, 1, 2), (5, 2, 1, 2), (4, 2, 2, 2)] {
            let bare = SearchOptions {
                prune: false,
                dominance: false,
                lex_prune: false,
                ..SearchOptions::default()
            };
            let reference = solve(n, d, at, ar, &bare);
            for bound in [BoundKind::Ceiling, BoundKind::Matching, BoundKind::Lp] {
                for dominance in [false, true] {
                    let opts = SearchOptions {
                        bound,
                        dominance,
                        ..SearchOptions::default()
                    };
                    assert_eq!(
                        solve(n, d, at, ar, &opts),
                        reference,
                        "({n},{d},{at},{ar}) {bound:?} dominance={dominance}"
                    );
                }
            }
        }
    }

    #[test]
    fn sub_symmetry_preserves_the_optimum_length() {
        for (n, d, at, ar) in [(4, 1, 1, 1), (5, 1, 1, 2), (5, 2, 1, 2), (5, 1, 2, 2)] {
            let (reference, _) = solve(n, d, at, ar, &SearchOptions::default());
            let deep = SearchOptions {
                sub_symmetry: true,
                ..SearchOptions::default()
            };
            let (l, _) = solve(n, d, at, ar, &deep);
            assert_eq!(l, reference, "({n},{d},{at},{ar})");
        }
    }

    #[test]
    fn solution_covers_every_demand() {
        let space = DemandSpace::new(5, 2);
        let cands = CandidateSpace::new(&space, 1, 2);
        let (sol, _) = minimum_cover(&space, &cands, &SearchOptions::default());
        let mut covered = BitSet::new(space.len());
        for &c in &sol.slots {
            covered.union_with(&cands.cands[c as usize].coverage);
        }
        assert_eq!(covered.len(), space.len());
    }

    #[test]
    fn incumbent_seed_never_changes_the_answer() {
        let space = DemandSpace::new(5, 1);
        let cands = CandidateSpace::new(&space, 1, 2);
        let (a, _) = minimum_cover(&space, &cands, &SearchOptions::default());
        let seeded = SearchOptions {
            incumbent_len: Some(a.slots.len()),
            ..SearchOptions::default()
        };
        let (b, _) = minimum_cover(&space, &cands, &seeded);
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_search_is_marked_inexact() {
        let space = DemandSpace::new(6, 2);
        let cands = CandidateSpace::new(&space, 1, 2);
        let opts = SearchOptions {
            max_nodes: Some(5),
            ..SearchOptions::default()
        };
        let (sol, stats) = minimum_cover(&space, &cands, &opts);
        // The greedy seed guarantees a valid cover even when every branch
        // runs out of budget.
        assert!(!sol.slots.is_empty());
        assert!(!stats.exact || stats.nodes <= 5 * stats.root_branches as u64);
    }

    #[test]
    fn branch_results_are_independent_of_execution_order() {
        // The campaign contract: a branch searched with its own local
        // incumbent yields the same result no matter what ran before it.
        let space = DemandSpace::new(5, 1);
        let cands = CandidateSpace::new(&space, 1, 2);
        let opts = SearchOptions::default();
        let plan = plan_root(&space, &cands, &opts);
        let forward: Vec<BranchResult> = (0..plan.branch_cands.len())
            .map(|i| {
                let local = AtomicUsize::new(plan.seed_len);
                search_root_branch(&space, &cands, &opts, &plan, i, &local)
            })
            .collect();
        let backward: Vec<BranchResult> = (0..plan.branch_cands.len())
            .rev()
            .map(|i| {
                let local = AtomicUsize::new(plan.seed_len);
                search_root_branch(&space, &cands, &opts, &plan, i, &local)
            })
            .collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }
}
