//! Parallel branch-and-bound minimum set cover over candidate slots.
//!
//! The search state is a partial schedule (a set of chosen candidate ids)
//! whose demand coverage lives in a [`CoverCounter`]: descending adds a
//! candidate's coverage with [`CoverCounter::add_tracked`], backtracking
//! unwinds it through the O(1)-mark undo trail — no rescan of the partial
//! solution. Branching picks the uncovered demand with the fewest
//! remaining suppliers (a zero-supplier demand refutes the subtree), and
//! sibling branches ban earlier-tried candidates so no slot set is visited
//! twice.
//!
//! **Pruning.** The admissible bound `⌈deficit / max_gain⌉` lower-bounds
//! the slots any completion still needs; a subtree is cut only when
//! `depth + bound` *strictly* exceeds the best known length, so every
//! optimum-length solution survives pruning regardless of incumbent
//! timing — the keystone of cross-thread determinism.
//!
//! **Symmetry.** At the root, candidates covering the branch demand are
//! deduplicated by their class signature under the demand's stabilizer
//! (node classes `{x}`, `{y}`, `Y∖{y}`, rest): two candidates with equal
//! per-class transmit/receive counts are images of each other under a
//! node relabeling that maps the demand space onto itself, so their
//! subtrees contain covers of exactly the same lengths.
//!
//! **Deterministic incumbent.** A solution is the *sorted* vector of its
//! candidate ids; solutions compare by `(length, lex order of ids)`. Each
//! root branch reports its branch-local minimum (found in canonical DFS
//! order), and the ordered reduction over branches takes the global
//! minimum — a rule with no dependence on thread count or completion
//! order. The shared atomic incumbent length only tightens pruning of
//! strictly-worse subtrees, so it can accelerate the search but never
//! change its answer.

use super::demands::{CandidateSpace, DemandSpace};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use ttdc_util::{BitSet, CoverCounter};

/// Knobs for [`minimum_cover`]. Defaults give the full pruned,
/// symmetry-reduced, exact search.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Apply the `⌈deficit / max_gain⌉` lower bound (off = the exhaustive
    /// baseline `bench_synth` compares against).
    pub prune: bool,
    /// Collapse root branches that are node-relabelings of each other.
    pub symmetry: bool,
    /// Per-root-branch node budget; `None` = run to exactness. When set,
    /// branches ignore the shared incumbent (budget cutoffs must not
    /// depend on cross-thread timing), so results stay deterministic.
    pub max_nodes: Option<u64>,
    /// Known upper bound on the optimum (e.g. a catalog entry being
    /// resumed): seeds the incumbent length, tightening pruning from the
    /// start. The bound itself is not returned as a solution.
    pub incumbent_len: Option<usize>,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            prune: true,
            symmetry: true,
            max_nodes: None,
            incumbent_len: None,
        }
    }
}

/// Search effort counters. `nodes`/`pruned` are totals over all branches
/// (they may vary run-to-run at >1 thread — incumbent timing changes what
/// gets pruned — but the winning solution never does).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Search-tree nodes expanded.
    pub nodes: u64,
    /// Subtrees cut by the lower bound.
    pub pruned: u64,
    /// `false` when some branch hit its node budget: the result is the
    /// best found, not a proven optimum.
    pub exact: bool,
    /// Root branches explored (after symmetry deduplication).
    pub root_branches: usize,
    /// Root branches before symmetry deduplication.
    pub root_branches_total: usize,
}

/// A cover: sorted candidate ids. Compares by `(len, lex)` — the
/// deterministic incumbent rule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverSolution {
    /// Candidate ids, ascending.
    pub slots: Vec<u32>,
}

impl CoverSolution {
    fn better_than(&self, other: &CoverSolution) -> bool {
        (self.slots.len(), &self.slots) < (other.slots.len(), &other.slots)
    }
}

/// Greedy max-marginal-gain cover (tie: lowest candidate id). Always
/// succeeds — every demand has at least one supplier — and seeds the
/// incumbent so pruning bites from the first branch.
pub fn greedy_cover(space: &DemandSpace, cands: &CandidateSpace) -> CoverSolution {
    let target = BitSet::from_iter(space.len(), 0..space.len());
    let mut counter = CoverCounter::new(space.len());
    counter.set_target(&target);
    let mut slots = Vec::new();
    while !counter.is_covered() {
        let mut best = usize::MAX;
        let mut best_gain = 0;
        for (c, cand) in cands.cands.iter().enumerate() {
            let gain = cand.coverage.intersection_len(counter.uncovered());
            if gain > best_gain {
                best_gain = gain;
                best = c;
            }
        }
        assert!(best != usize::MAX, "uncoverable demand (no supplier)");
        counter.add(&cands.cands[best].coverage);
        slots.push(best as u32);
    }
    slots.sort_unstable();
    CoverSolution { slots }
}

/// Class signature of a candidate under the root demand's stabilizer:
/// per-class (`x`, `y`, `Y∖{y}`, rest) transmit and receive counts.
fn root_signature(space: &DemandSpace, cands: &CandidateSpace, root: usize, c: u32) -> [usize; 8] {
    let dem = &space.demands()[root];
    let cand = &cands.cands[c as usize];
    let n = space.num_nodes();
    let mut sig = [0usize; 8];
    for v in 0..n {
        let class = if v == dem.x {
            0
        } else if v == dem.y {
            1
        } else if dem.group.contains(v) {
            2
        } else {
            3
        };
        if cand.t.contains(v) {
            sig[class] += 1;
        }
        if cand.r.contains(v) {
            sig[4 + class] += 1;
        }
    }
    sig
}

struct Worker<'a> {
    cands: &'a CandidateSpace,
    opts: &'a SearchOptions,
    shared_len: &'a AtomicUsize,
    counter: CoverCounter,
    banned: Vec<bool>,
    chosen: Vec<u32>,
    best: Option<CoverSolution>,
    /// Numeric incumbent the branch started from (greedy / resume seed).
    seed_len: usize,
    nodes: u64,
    pruned: u64,
    exhausted: bool,
}

impl Worker<'_> {
    fn bound_len(&self) -> usize {
        let local = self
            .best
            .as_ref()
            .map_or(self.seed_len, |b| b.slots.len().min(self.seed_len));
        if self.opts.max_nodes.is_some() {
            local
        } else {
            local.min(self.shared_len.load(Ordering::Relaxed))
        }
    }

    fn dfs(&mut self) {
        self.nodes += 1;
        if let Some(budget) = self.opts.max_nodes {
            if self.nodes > budget {
                self.exhausted = true;
                return;
            }
        }
        if self.counter.is_covered() {
            let mut slots = self.chosen.clone();
            slots.sort_unstable();
            let sol = CoverSolution { slots };
            let better = match &self.best {
                Some(b) => sol.better_than(b),
                None => sol.slots.len() <= self.seed_len,
            };
            if better {
                self.shared_len
                    .fetch_min(sol.slots.len(), Ordering::Relaxed);
                self.best = Some(sol);
            }
            return;
        }
        let depth = self.chosen.len();
        let lower = if self.opts.prune {
            self.counter.deficit().div_ceil(self.cands.max_gain)
        } else {
            1 // not covered ⇒ at least one more slot; keeps ties exact
        };
        if depth + lower > self.bound_len() {
            self.pruned += 1;
            return;
        }
        // Branch demand: uncovered, fewest unbanned suppliers, tie lowest.
        let mut branch = usize::MAX;
        let mut branch_count = usize::MAX;
        for i in self.counter.uncovered().iter() {
            let count = self.cands.suppliers[i]
                .iter()
                .filter(|&&c| !self.banned[c as usize])
                .count();
            if count < branch_count {
                branch_count = count;
                branch = i;
                if count == 0 {
                    break;
                }
            }
        }
        if branch_count == 0 {
            return; // dead end: demand lost all suppliers to bans
        }
        let sups: Vec<u32> = self.cands.suppliers[branch]
            .iter()
            .copied()
            .filter(|&c| !self.banned[c as usize])
            .collect();
        let cands = self.cands;
        for &c in &sups {
            if self.exhausted {
                break;
            }
            let mark = self.counter.mark();
            // Coverage is over the full demand set — already a subset of
            // the target, no masking needed.
            self.counter.add_tracked(&cands.cands[c as usize].coverage);
            self.chosen.push(c);
            self.dfs();
            self.chosen.pop();
            self.counter.undo_to(mark);
            self.banned[c as usize] = true;
        }
        for &c in &sups {
            self.banned[c as usize] = false;
        }
    }
}

/// Exact (or budgeted) minimum set cover. See the module docs for the
/// determinism argument. Returns the best cover found plus effort stats.
pub fn minimum_cover(
    space: &DemandSpace,
    cands: &CandidateSpace,
    opts: &SearchOptions,
) -> (CoverSolution, SearchStats) {
    let greedy = greedy_cover(space, cands);
    let seed_len = greedy
        .slots
        .len()
        .min(opts.incumbent_len.unwrap_or(usize::MAX));
    let target = BitSet::from_iter(space.len(), 0..space.len());

    // Root branch demand: globally fewest suppliers, tie lowest id.
    let root = (0..space.len())
        .min_by_key(|&i| (cands.suppliers[i].len(), i))
        .expect("demand space is never empty");
    let all_sups = &cands.suppliers[root];
    let branch_cands: Vec<u32> = if opts.symmetry {
        let mut seen: Vec<[usize; 8]> = Vec::new();
        let mut kept = Vec::new();
        for &c in all_sups {
            let sig = root_signature(space, cands, root, c);
            if !seen.contains(&sig) {
                seen.push(sig);
                kept.push(c);
            }
        }
        kept
    } else {
        all_sups.clone()
    };

    let shared_len = AtomicUsize::new(seed_len);
    let total_nodes = AtomicU64::new(0);
    let total_pruned = AtomicU64::new(0);
    let any_exhausted = AtomicUsize::new(0);

    // One task per root branch; branch i bans the candidates of branches
    // 0..i (they were fully explored — any cover through them was found
    // there). Ordered collect keeps the reduction deterministic.
    let branch_bests: Vec<Option<CoverSolution>> = (0..branch_cands.len())
        .collect::<Vec<_>>()
        .into_par_iter()
        .with_min_len(1)
        .map(|i| {
            let mut counter = CoverCounter::new(space.len());
            counter.set_target(&target);
            let mut banned = vec![false; cands.cands.len()];
            for &prev in &branch_cands[..i] {
                banned[prev as usize] = true;
            }
            let c = branch_cands[i];
            counter.add(&cands.cands[c as usize].coverage);
            let mut w = Worker {
                cands,
                opts,
                shared_len: &shared_len,
                counter,
                banned,
                chosen: vec![c],
                best: None,
                seed_len,
                nodes: 0,
                pruned: 0,
                exhausted: false,
            };
            w.dfs();
            total_nodes.fetch_add(w.nodes, Ordering::Relaxed);
            total_pruned.fetch_add(w.pruned, Ordering::Relaxed);
            if w.exhausted {
                any_exhausted.fetch_add(1, Ordering::Relaxed);
            }
            w.best
        })
        .collect();

    let mut best = greedy;
    for sol in branch_bests.into_iter().flatten() {
        if sol.better_than(&best) {
            best = sol;
        }
    }
    let stats = SearchStats {
        nodes: total_nodes.load(Ordering::Relaxed),
        pruned: total_pruned.load(Ordering::Relaxed),
        exact: any_exhausted.load(Ordering::Relaxed) == 0,
        root_branches: branch_cands.len(),
        root_branches_total: all_sups.len(),
    };
    (best, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(n: usize, d: usize, at: usize, ar: usize, opts: &SearchOptions) -> (usize, Vec<u32>) {
        let space = DemandSpace::new(n, d);
        let cands = CandidateSpace::new(&space, at, ar);
        let (sol, stats) = minimum_cover(&space, &cands, opts);
        assert!(stats.exact);
        (sol.slots.len(), sol.slots)
    }

    #[test]
    fn pruned_and_exhaustive_agree_on_optimum_length() {
        for (n, d, at, ar) in [(4, 1, 1, 1), (5, 1, 1, 2), (5, 2, 1, 2)] {
            let full = SearchOptions::default();
            let bare = SearchOptions {
                prune: false,
                symmetry: false,
                ..SearchOptions::default()
            };
            let (l1, _) = solve(n, d, at, ar, &full);
            let (l2, _) = solve(n, d, at, ar, &bare);
            assert_eq!(l1, l2, "({n},{d},{at},{ar})");
        }
    }

    #[test]
    fn solution_covers_every_demand() {
        let space = DemandSpace::new(5, 2);
        let cands = CandidateSpace::new(&space, 1, 2);
        let (sol, _) = minimum_cover(&space, &cands, &SearchOptions::default());
        let mut covered = BitSet::new(space.len());
        for &c in &sol.slots {
            covered.union_with(&cands.cands[c as usize].coverage);
        }
        assert_eq!(covered.len(), space.len());
    }

    #[test]
    fn incumbent_seed_never_changes_the_answer() {
        let space = DemandSpace::new(5, 1);
        let cands = CandidateSpace::new(&space, 1, 2);
        let (a, _) = minimum_cover(&space, &cands, &SearchOptions::default());
        let seeded = SearchOptions {
            incumbent_len: Some(a.slots.len()),
            ..SearchOptions::default()
        };
        let (b, _) = minimum_cover(&space, &cands, &seeded);
        assert_eq!(a, b);
    }

    #[test]
    fn budgeted_search_is_marked_inexact() {
        let space = DemandSpace::new(6, 2);
        let cands = CandidateSpace::new(&space, 1, 2);
        let opts = SearchOptions {
            max_nodes: Some(5),
            ..SearchOptions::default()
        };
        let (sol, stats) = minimum_cover(&space, &cands, &opts);
        // The greedy seed guarantees a valid cover even when every branch
        // runs out of budget.
        assert!(!sol.slots.is_empty());
        assert!(!stats.exact || stats.nodes <= 5 * stats.root_branches as u64);
    }
}
