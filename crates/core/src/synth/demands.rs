//! Demand triples and candidate slots: the set-cover view of synthesis.
//!
//! Requirement 3 (topology transparency for maximum degree `D`) says: for
//! every node `x`, every `D`-subset `Y ⊆ V ∖ {x}` of potential neighbors,
//! and every `y ∈ Y`, some slot lets `x` reach `y` even if all of `Y` is
//! interfering — i.e. a slot whose transmitter set contains `x`, avoids all
//! of `Y`, and whose receiver set contains `y`. Each triple `(x, Y, y)` is
//! one *demand*; a schedule satisfies Requirement 3 exactly when its slots
//! cover every demand. Minimizing frame length is therefore a minimum
//! set-cover problem over the candidate-slot space, which is what the
//! branch-and-bound in [`super::search`] solves.
//!
//! Candidate slots are `(T, R)` pairs with `1 ≤ |T| ≤ α_T`, `R ⊆ V ∖ T`,
//! and `|R| = min(α_R, n − |T|)`: receivers never interfere, so a
//! non-maximal `R` is dominated by any maximal superset and can be dropped
//! without losing optimality (transmitters *can* interfere, so `|T|` ranges
//! over all sizes).

use crate::schedule::Schedule;
use ttdc_util::{for_each_subset_of, BitSet};

/// One Requirement-3 demand triple `(x, Y, y)` with `y ∈ Y`.
#[derive(Clone, Debug)]
pub struct Demand {
    /// Transmitting node.
    pub x: usize,
    /// Intended receiver (a member of the interferer group).
    pub y: usize,
    /// The full `D`-subset `Y` (includes `y`).
    pub group: BitSet,
}

/// All demand triples for `(n, D)`, in canonical order: `x` ascending,
/// `Y` in lexicographic subset order, `y` ascending within `Y`.
#[derive(Clone, Debug)]
pub struct DemandSpace {
    n: usize,
    d: usize,
    demands: Vec<Demand>,
}

impl DemandSpace {
    /// Enumerates every demand for `n` nodes at maximum degree `d`.
    /// `|demands| = n · C(n−1, d) · d`.
    pub fn new(n: usize, d: usize) -> DemandSpace {
        assert!(d >= 1 && n > d, "need 1 ≤ D < n (n = {n}, D = {d})");
        let mut demands = Vec::new();
        for x in 0..n {
            let pool: Vec<usize> = (0..n).filter(|&v| v != x).collect();
            for_each_subset_of(&pool, d, |ys| {
                let group = BitSet::from_iter(n, ys.iter().copied());
                for &y in ys {
                    demands.push(Demand {
                        x,
                        y,
                        group: group.clone(),
                    });
                }
                true
            });
        }
        DemandSpace { n, d, demands }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Maximum degree the demands encode.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of demand triples.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// `true` when there are no demands (never for valid `(n, d)`).
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// The demand triples in canonical order.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// `true` iff slot `(t, r)` covers demand `i`: `x ∈ T`, `T ∩ Y = ∅`,
    /// `y ∈ R`.
    pub fn covers(&self, i: usize, t: &BitSet, r: &BitSet) -> bool {
        let dem = &self.demands[i];
        t.contains(dem.x) && t.is_disjoint(&dem.group) && r.contains(dem.y)
    }
}

/// One candidate slot with its precomputed demand coverage.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Transmitter set.
    pub t: BitSet,
    /// Receiver set (maximal: `|R| = min(α_R, n − |T|)`).
    pub r: BitSet,
    /// Bitmask over demand ids this slot covers.
    pub coverage: BitSet,
}

/// The full candidate-slot space for `(n, D, α_T, α_R)`, in canonical
/// order (`|T|` ascending, then `T` lexicographic, then `R` lexicographic)
/// with a per-demand supplier index.
#[derive(Clone, Debug)]
pub struct CandidateSpace {
    /// Candidates that cover at least one demand, canonical order.
    pub cands: Vec<Candidate>,
    /// `suppliers[i]` = candidate ids covering demand `i`, ascending.
    pub suppliers: Vec<Vec<u32>>,
    /// `reach[i]` = union of `coverage` over every supplier of demand `i`:
    /// the demands co-coverable with `i` by one slot (always contains
    /// `i`). These are the conflict neighborhoods the matching bound's
    /// greedy packing blocks with.
    pub reach: Vec<BitSet>,
    /// Largest single-candidate coverage (the deficit bound's unit).
    pub max_gain: usize,
}

impl CandidateSpace {
    /// Enumerates every useful candidate slot and indexes it by demand.
    pub fn new(space: &DemandSpace, alpha_t: usize, alpha_r: usize) -> CandidateSpace {
        let n = space.num_nodes();
        assert!(alpha_t >= 1 && alpha_r >= 1, "need α_T, α_R ≥ 1");
        let all: Vec<usize> = (0..n).collect();
        let mut cands = Vec::new();
        for tsize in 1..=alpha_t.min(n) {
            let rsize = alpha_r.min(n - tsize);
            if rsize == 0 {
                continue; // T = V: nobody can receive.
            }
            for_each_subset_of(&all, tsize, |ts| {
                let t = BitSet::from_iter(n, ts.iter().copied());
                let rest: Vec<usize> = (0..n).filter(|&v| !t.contains(v)).collect();
                for_each_subset_of(&rest, rsize, |rs| {
                    let r = BitSet::from_iter(n, rs.iter().copied());
                    let mut coverage = BitSet::new(space.len());
                    for i in 0..space.len() {
                        if space.covers(i, &t, &r) {
                            coverage.insert(i);
                        }
                    }
                    if !coverage.is_empty() {
                        cands.push(Candidate {
                            t: t.clone(),
                            r,
                            coverage,
                        });
                    }
                    true
                });
                true
            });
        }
        let mut suppliers = vec![Vec::new(); space.len()];
        let mut reach = vec![BitSet::new(space.len()); space.len()];
        let mut max_gain = 0;
        for (c, cand) in cands.iter().enumerate() {
            max_gain = max_gain.max(cand.coverage.len());
            for i in cand.coverage.iter() {
                suppliers[i].push(c as u32);
                reach[i].union_with(&cand.coverage);
            }
        }
        CandidateSpace {
            cands,
            suppliers,
            reach,
            max_gain,
        }
    }

    /// Builds the schedule for a set of candidate ids (sorted ascending —
    /// the canonical slot order the search reports).
    pub fn schedule(&self, n: usize, slots: &[u32]) -> Schedule {
        let t = slots
            .iter()
            .map(|&c| self.cands[c as usize].t.clone())
            .collect();
        let r = slots
            .iter()
            .map(|&c| self.cands[c as usize].r.clone())
            .collect();
        Schedule::new(n, t, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_count_matches_formula() {
        // n · C(n−1, d) · d
        let s = DemandSpace::new(5, 2);
        assert_eq!(s.len(), 5 * 6 * 2);
        let s = DemandSpace::new(6, 1);
        assert_eq!(s.len(), 6 * 5);
    }

    #[test]
    fn coverage_matches_definition() {
        let s = DemandSpace::new(4, 2);
        let t = BitSet::from_iter(4, [0]);
        let r = BitSet::from_iter(4, [1, 2]);
        for (i, dem) in s.demands().iter().enumerate() {
            let expect = dem.x == 0 && !dem.group.contains(0) && r.contains(dem.y);
            assert_eq!(s.covers(i, &t, &r), expect, "demand {i}");
        }
    }

    #[test]
    fn every_demand_has_a_supplier() {
        for (n, d, at, ar) in [(5, 1, 1, 1), (5, 2, 1, 2), (6, 2, 2, 2)] {
            let space = DemandSpace::new(n, d);
            let cs = CandidateSpace::new(&space, at, ar);
            assert!(
                cs.suppliers.iter().all(|s| !s.is_empty()),
                "({n},{d},{at},{ar})"
            );
        }
    }

    #[test]
    fn reach_is_the_union_of_supplier_coverages() {
        let space = DemandSpace::new(5, 2);
        let cs = CandidateSpace::new(&space, 1, 2);
        for i in 0..space.len() {
            let mut expect = BitSet::new(space.len());
            for &c in &cs.suppliers[i] {
                expect.union_with(&cs.cands[c as usize].coverage);
            }
            assert_eq!(cs.reach[i], expect, "demand {i}");
            assert!(
                cs.reach[i].contains(i),
                "reach must contain the demand itself"
            );
        }
    }

    #[test]
    fn candidates_respect_alpha_caps_and_maximal_r() {
        let space = DemandSpace::new(6, 2);
        let cs = CandidateSpace::new(&space, 2, 3);
        assert!(!cs.cands.is_empty());
        for c in &cs.cands {
            assert!(!c.t.is_empty() && c.t.len() <= 2);
            assert_eq!(c.r.len(), 3.min(6 - c.t.len()));
            assert!(c.t.is_disjoint(&c.r));
        }
    }
}
