//! Schedule synthesis: exact branch-and-bound search for minimum-length
//! `(α_T, α_R)`-schedules, with a randomized local-search polish for
//! budget-limited runs and a best-known-schedule catalog as output.
//!
//! The pipeline (see DESIGN.md "Schedule synthesis"):
//!
//! 1. [`demands`] reduces Requirement 3 to set cover: demand triples
//!    `(x, Y, y)` vs candidate slots `(T, R)` with per-slot α caps.
//! 2. [`search`] runs parallel branch-and-bound over that space with
//!    incremental `CoverCounter` deficits, admissible pruning, root
//!    symmetry reduction, and a deterministic incumbent rule (bit-identical
//!    winner at any thread count).
//! 3. [`polish`](fn@polish) ruin-and-recreate local search improves
//!    inexact (budgeted) incumbents, deterministically in its seed.
//! 4. [`catalog`] persists winners with provenance; `ttdc build` consults
//!    it before falling back to the Figure 2 construction.
//!
//! Every schedule leaving this module is re-checked against the *naive*
//! Requirement-3 oracle (via [`VerifyCache`]) before anyone trusts it.

pub mod catalog;
pub mod demands;
pub mod search;

use crate::requirements::requirement3_violation_naive;
use crate::schedule::Schedule;
use demands::{CandidateSpace, DemandSpace};
use search::{greedy_cover, minimum_cover, CoverSolution, SearchOptions, SearchStats};
use std::collections::{HashMap, VecDeque};
use ttdc_util::{BitSet, CoverCounter};

/// A synthesis target: the four paper parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SynthProblem {
    /// Number of nodes.
    pub n: usize,
    /// Maximum degree to be transparent for.
    pub d: usize,
    /// Per-slot transmitter cap.
    pub alpha_t: usize,
    /// Per-slot receiver cap.
    pub alpha_r: usize,
}

impl SynthProblem {
    /// Validated constructor (`1 ≤ D < n`, `α_T, α_R ≥ 1`).
    pub fn new(n: usize, d: usize, alpha_t: usize, alpha_r: usize) -> SynthProblem {
        assert!(d >= 1 && n > d, "need 1 ≤ D < n");
        assert!(alpha_t >= 1 && alpha_r >= 1, "need α_T, α_R ≥ 1");
        SynthProblem {
            n,
            d,
            alpha_t,
            alpha_r,
        }
    }
}

/// Synthesis knobs: the search options plus the local-search budget.
#[derive(Clone, Copy, Debug)]
pub struct SynthOptions {
    /// Branch-and-bound configuration.
    pub search: SearchOptions,
    /// Ruin-and-recreate iterations applied to a budget-limited result
    /// (exact results are already optimal and skip the polish).
    pub polish_iters: u64,
    /// Seed for the polish's move generator.
    pub seed: u64,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            search: SearchOptions::default(),
            polish_iters: 200,
            seed: 0x5EED,
        }
    }
}

/// What a synthesis run produced.
#[derive(Clone, Debug)]
pub struct SynthOutcome {
    /// The best schedule found (slots in canonical candidate-id order).
    pub schedule: Schedule,
    /// Search effort and exactness.
    pub stats: SearchStats,
    /// Whether the local search improved on the branch-and-bound result.
    pub polish_improved: bool,
    /// `schedule.canonical_fingerprint()`, the catalog key.
    pub fingerprint: u64,
}

/// Runs the synthesizer for one parameter point. Deterministic at any
/// rayon thread count; call inside `pool.install` to control parallelism.
pub fn synthesize(p: &SynthProblem, o: &SynthOptions) -> SynthOutcome {
    let space = DemandSpace::new(p.n, p.d);
    let cands = CandidateSpace::new(&space, p.alpha_t, p.alpha_r);
    let (mut sol, stats) = minimum_cover(&space, &cands, &o.search);
    let mut polish_improved = false;
    if !stats.exact && o.polish_iters > 0 {
        let polished = polish(&space, &cands, &sol, o.seed, o.polish_iters);
        if polished.slots.len() < sol.slots.len() {
            sol = polished;
            polish_improved = true;
        }
    }
    let schedule = cands.schedule(p.n, &sol.slots);
    debug_assert!(
        requirement3_violation_naive(&schedule, p.d).is_none(),
        "synthesized schedule fails the naive Requirement-3 oracle"
    );
    SynthOutcome {
        fingerprint: schedule.canonical_fingerprint(),
        schedule,
        stats,
        polish_improved,
    }
}

struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Drops every redundant slot (all of its demands have another supplier,
/// per `CoverCounter` multiplicities), scanning from the highest candidate
/// id down so the surviving set is deterministic.
fn eliminate_redundant(cands: &CandidateSpace, counter: &mut CoverCounter, slots: &mut Vec<u32>) {
    let mut i = slots.len();
    while i > 0 {
        i -= 1;
        let cov = &cands.cands[slots[i] as usize].coverage;
        if counter.is_redundant(cov) {
            counter.remove(cov);
            slots.remove(i);
        }
    }
}

/// Randomized ruin-and-recreate local search: remove one random slot,
/// greedily re-cover, strip redundancy, keep the result if strictly
/// shorter. Deterministic in `seed`; never returns a longer cover than
/// `start`.
pub fn polish(
    space: &DemandSpace,
    cands: &CandidateSpace,
    start: &CoverSolution,
    seed: u64,
    iters: u64,
) -> CoverSolution {
    let target = BitSet::from_iter(space.len(), 0..space.len());
    let mut rng = SplitMix(seed);
    let mut current = start.slots.clone();
    let mut counter = CoverCounter::new(space.len());
    for _ in 0..iters {
        if current.len() <= 1 {
            break;
        }
        let drop_at = (rng.next() % current.len() as u64) as usize;
        let mut trial: Vec<u32> = current
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop_at)
            .map(|(_, &c)| c)
            .collect();
        counter.set_target(&target);
        for &c in &trial {
            counter.add(&cands.cands[c as usize].coverage);
        }
        // Greedy re-cover (max gain, tie lowest id), skipping the slot we
        // just ruined so the move can actually change the structure.
        let banned = current[drop_at];
        while !counter.is_covered() {
            let mut best = usize::MAX;
            let mut best_gain = 0;
            for (c, cand) in cands.cands.iter().enumerate() {
                if c as u32 == banned {
                    continue;
                }
                let gain = cand.coverage.intersection_len(counter.uncovered());
                if gain > best_gain {
                    best_gain = gain;
                    best = c;
                }
            }
            if best == usize::MAX {
                // Only the banned slot can cover the rest: revert.
                trial.clear();
                break;
            }
            counter.add(&cands.cands[best].coverage);
            trial.push(best as u32);
        }
        if trial.is_empty() {
            continue;
        }
        eliminate_redundant(cands, &mut counter, &mut trial);
        if trial.len() < current.len() {
            trial.sort_unstable();
            current = trial;
        }
    }
    CoverSolution { slots: current }
}

/// Entries a [`VerifyCache`] holds before evicting: long campaigns verify
/// an unbounded stream of distinct incumbents, and an uncapped memo would
/// grow with them for the life of the process.
pub const VERIFY_CACHE_CAPACITY: usize = 1024;

/// Memoized naive-oracle verification keyed by canonical fingerprint and
/// degree: relabel-equivalent schedules share one oracle run. Used by the
/// catalog validator and `ttdc build`'s catalog consult, where the same
/// design may be checked repeatedly in one process. Bounded: once
/// `capacity` distinct keys are resident the oldest insertion is evicted
/// (FIFO — re-verifying an evicted schedule is merely slow, never wrong,
/// so the simplest policy that bounds memory wins).
pub struct VerifyCache {
    map: HashMap<(u64, usize), bool>,
    /// Insertion order of resident keys, oldest at the front.
    order: VecDeque<(u64, usize)>,
    capacity: usize,
}

impl Default for VerifyCache {
    fn default() -> Self {
        VerifyCache::with_capacity(VERIFY_CACHE_CAPACITY)
    }
}

impl VerifyCache {
    /// An empty cache with the default capacity.
    pub fn new() -> VerifyCache {
        VerifyCache::default()
    }

    /// An empty cache evicting beyond `capacity` entries (`≥ 1`).
    pub fn with_capacity(capacity: usize) -> VerifyCache {
        assert!(capacity >= 1, "a zero-capacity cache cannot memoize");
        VerifyCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Number of distinct `(fingerprint, D)` pairs currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been verified yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Naive-oracle Requirement-3 check, memoized on
    /// `(canonical_fingerprint, d)`. The oracle is the *reference*
    /// verifier — a cache hit is as trustworthy as the original run
    /// (fingerprint collisions aside, see [`crate::fingerprint`]).
    pub fn is_topology_transparent(&mut self, s: &Schedule, d: usize) -> bool {
        let key = (s.canonical_fingerprint(), d);
        if let Some(&hit) = self.map.get(&key) {
            return hit;
        }
        let ok = requirement3_violation_naive(s, d).is_none();
        if self.map.len() == self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, ok);
        self.order.push_back(key);
        ok
    }
}

/// Greedy cover re-exported for callers that want the seed solution alone
/// (bench baselines).
pub fn greedy_solution(p: &SynthProblem) -> (usize, SynthOutcome) {
    let space = DemandSpace::new(p.n, p.d);
    let cands = CandidateSpace::new(&space, p.alpha_t, p.alpha_r);
    let sol = greedy_cover(&space, &cands);
    let schedule = cands.schedule(p.n, &sol.slots);
    let len = sol.slots.len();
    (
        len,
        SynthOutcome {
            fingerprint: schedule.canonical_fingerprint(),
            schedule,
            stats: SearchStats::default(),
            polish_improved: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesize_small_point_is_transparent_and_exact() {
        let p = SynthProblem::new(5, 2, 1, 2);
        let out = synthesize(&p, &SynthOptions::default());
        assert!(out.stats.exact);
        assert!(requirement3_violation_naive(&out.schedule, 2).is_none());
        assert!(out.schedule.is_alpha_schedule(1, 2));
        assert_eq!(out.fingerprint, out.schedule.canonical_fingerprint());
    }

    #[test]
    fn verify_cache_memoizes_by_fingerprint() {
        let p = SynthProblem::new(5, 1, 1, 2);
        let out = synthesize(&p, &SynthOptions::default());
        let mut cache = VerifyCache::new();
        assert!(cache.is_empty());
        assert!(cache.is_topology_transparent(&out.schedule, 1));
        assert_eq!(cache.len(), 1);
        // Same schedule again: still one entry.
        assert!(cache.is_topology_transparent(&out.schedule, 1));
        assert_eq!(cache.len(), 1);
        // Different degree is a different key, and the cached verdict
        // matches a fresh oracle run. (At α_T = 1 every slot has a lone
        // transmitter, so the D=1 optimum happens to stay transparent at
        // D=4 — the value itself is not the point, the keying is.)
        let transparent_at_4 = cache.is_topology_transparent(&out.schedule, 4);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            transparent_at_4,
            requirement3_violation_naive(&out.schedule, 4).is_none()
        );
    }

    #[test]
    fn verify_cache_evicts_oldest_beyond_capacity() {
        let p = SynthProblem::new(5, 1, 1, 2);
        let out = synthesize(&p, &SynthOptions::default());
        let s = &out.schedule;
        let mut cache = VerifyCache::with_capacity(2);
        // Three distinct keys (same schedule, different degree) through a
        // two-entry cache: residency never exceeds capacity.
        let d1 = cache.is_topology_transparent(s, 1);
        let d2 = cache.is_topology_transparent(s, 2);
        assert_eq!(cache.len(), 2);
        let d3 = cache.is_topology_transparent(s, 3);
        assert_eq!(cache.len(), 2, "oldest entry evicted, not grown past cap");
        // Hits on resident keys do not evict.
        assert_eq!(cache.is_topology_transparent(s, 3), d3);
        assert_eq!(cache.len(), 2);
        // The evicted key re-verifies to the same verdict (eviction is a
        // speed matter, never a correctness one) and re-enters FIFO order.
        assert_eq!(cache.is_topology_transparent(s, 1), d1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.is_topology_transparent(s, 2), d2);
        assert_eq!(
            d1,
            requirement3_violation_naive(s, 1).is_none(),
            "cached verdict matches a fresh oracle run"
        );
    }

    #[test]
    fn polish_never_lengthens_and_stays_valid() {
        let p = SynthProblem::new(6, 2, 1, 2);
        let space = DemandSpace::new(p.n, p.d);
        let cands = CandidateSpace::new(&space, p.alpha_t, p.alpha_r);
        let start = greedy_cover(&space, &cands);
        let polished = polish(&space, &cands, &start, 7, 100);
        assert!(polished.slots.len() <= start.slots.len());
        let s = cands.schedule(p.n, &polished.slots);
        assert!(requirement3_violation_naive(&s, p.d).is_none());
        // Deterministic in the seed.
        let again = polish(&space, &cands, &start, 7, 100);
        assert_eq!(polished, again);
    }
}
