//! The best-known-schedule catalog.
//!
//! `results/catalog/` holds one file per parameter point
//! (`n{n}_d{D}_at{α_T}_ar{α_R}.sched`): a provenance header of
//! `#`-comment lines followed by the ordinary v1 schedule text, so any
//! schedule consumer can read a catalog entry with [`crate::io::from_text`]
//! unchanged:
//!
//! ```text
//! # ttdc-catalog v1
//! # n=6 D=2 alpha_t=1 alpha_r=2
//! # L=15 exact=true nodes=1234 source=synth
//! # search bound=lp lp_depth=64 lp_passes=1 dominance=true sub_symmetry=false
//! # fingerprint=0x0123456789abcdef
//! ttdc-schedule v1
//! n=6 L=15
//! T=0 R=1,2
//! ...
//! ```
//!
//! The `# search …` line records the bound/pruning configuration that
//! produced the entry ([`super::search::SearchOptions::config_string`]);
//! it is optional so headers written before it existed still parse.
//!
//! Entries are written atomically and byte-round-trip through
//! [`entry_to_text`]/[`entry_from_text`]. Nothing is trusted on read:
//! [`validate_entry`] re-verifies an entry against the naive oracle
//! verifiers (Requirements 1–3 plus the cover-free-family condition on the
//! transmit sets) and re-derives the fingerprint — CI runs it over every
//! committed entry.

use super::{SynthProblem, VerifyCache};
use crate::io;
use crate::requirements::{requirement1_violation_naive, requirement2_violation_naive};
use crate::schedule::Schedule;
use std::path::{Path, PathBuf};

/// One catalog entry: a schedule plus its provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatalogEntry {
    /// The parameter point this schedule is best-known for.
    pub problem: SynthProblem,
    /// The schedule itself.
    pub schedule: Schedule,
    /// `true` when branch-and-bound proved optimality at this point.
    pub exact: bool,
    /// Search-tree nodes the producing run expanded.
    pub nodes: u64,
    /// Producer tag: `synth`, `synth+polish`, `campaign`, `greedy`, …
    pub source: String,
    /// Bound/pruning configuration of the producing search
    /// ([`super::search::SearchOptions::config_string`]); `None` for
    /// entries written before this field existed.
    pub config: Option<String>,
    /// `schedule.canonical_fingerprint()`, pinned at write time.
    pub fingerprint: u64,
}

/// Canonical file name for a parameter point.
pub fn entry_file_name(p: &SynthProblem) -> String {
    format!("n{:03}_d{}_at{}_ar{}.sched", p.n, p.d, p.alpha_t, p.alpha_r)
}

/// Serializes an entry (provenance header + schedule text).
pub fn entry_to_text(e: &CatalogEntry) -> String {
    let p = &e.problem;
    let search_line = match &e.config {
        Some(cfg) => format!("# search {cfg}\n"),
        None => String::new(),
    };
    format!(
        "# ttdc-catalog v1\n\
         # n={} D={} alpha_t={} alpha_r={}\n\
         # L={} exact={} nodes={} source={}\n\
         {search_line}\
         # fingerprint=0x{:016x}\n{}",
        p.n,
        p.d,
        p.alpha_t,
        p.alpha_r,
        e.schedule.frame_length(),
        e.exact,
        e.nodes,
        e.source,
        e.fingerprint,
        io::to_text(&e.schedule)
    )
}

fn header_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|v| v.strip_prefix('=')))
        .ok_or_else(|| format!("catalog header missing {key}= in {line:?}"))
}

/// Parses an entry. The schedule body goes through the strict v1 parser;
/// the header is checked for internal consistency (declared `n`/`L` vs the
/// parsed schedule) but the *semantic* checks live in [`validate_entry`].
pub fn entry_from_text(text: &str) -> Result<CatalogEntry, String> {
    let mut comments = text.lines().filter(|l| l.trim_start().starts_with('#'));
    let magic = comments.next().ok_or("missing catalog header")?;
    if magic.trim() != "# ttdc-catalog v1" {
        return Err(format!("bad catalog magic {magic:?}"));
    }
    let params = comments.next().ok_or("missing parameter line")?;
    let claims = comments.next().ok_or("missing provenance line")?;
    // Optional `# search <config>` line (absent in pre-PR-10 headers).
    let mut fp_line = comments.next().ok_or("missing fingerprint line")?;
    let config = match fp_line.trim_start().strip_prefix("# search ") {
        Some(cfg) => {
            let cfg = cfg.trim().to_string();
            fp_line = comments.next().ok_or("missing fingerprint line")?;
            Some(cfg)
        }
        None => None,
    };
    let parse = |s: &str| -> Result<usize, String> {
        s.parse::<usize>().map_err(|_| format!("bad number {s:?}"))
    };
    let problem = SynthProblem {
        n: parse(header_field(params, "n")?)?,
        d: parse(header_field(params, "D")?)?,
        alpha_t: parse(header_field(params, "alpha_t")?)?,
        alpha_r: parse(header_field(params, "alpha_r")?)?,
    };
    let l = parse(header_field(claims, "L")?)?;
    let exact = match header_field(claims, "exact")? {
        "true" => true,
        "false" => false,
        other => return Err(format!("bad exact flag {other:?}")),
    };
    let nodes = header_field(claims, "nodes")?
        .parse::<u64>()
        .map_err(|_| "bad nodes count".to_string())?;
    let source = header_field(claims, "source")?.to_string();
    let fp_text = header_field(fp_line, "fingerprint")?;
    let fingerprint = fp_text
        .strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| format!("bad fingerprint {fp_text:?}"))?;
    let schedule = io::from_text(text).map_err(|e| format!("schedule body: {e}"))?;
    if schedule.num_nodes() != problem.n || schedule.frame_length() != l {
        return Err(format!(
            "header claims n={} L={l} but schedule has n={} L={}",
            problem.n,
            schedule.num_nodes(),
            schedule.frame_length()
        ));
    }
    Ok(CatalogEntry {
        problem,
        schedule,
        exact,
        nodes,
        source,
        config,
        fingerprint,
    })
}

/// Full semantic validation against the naive oracles: α caps, all three
/// requirement verifiers, the CFF condition on transmit sets (Requirement
/// 2 in combinatorial form), and the recomputed fingerprint. This is the
/// trust boundary for anything read from disk.
pub fn validate_entry(e: &CatalogEntry, cache: &mut VerifyCache) -> Result<(), String> {
    let p = &e.problem;
    let s = &e.schedule;
    if !s.is_alpha_schedule(p.alpha_t, p.alpha_r) {
        return Err(format!(
            "entry violates α caps ({}, {})",
            p.alpha_t, p.alpha_r
        ));
    }
    if s.canonical_fingerprint() != e.fingerprint {
        return Err(format!(
            "fingerprint mismatch: header 0x{:016x}, recomputed 0x{:016x}",
            e.fingerprint,
            s.canonical_fingerprint()
        ));
    }
    if !cache.is_topology_transparent(s, p.d) {
        return Err(format!("entry fails Requirement 3 (naive) at D={}", p.d));
    }
    if let Some(v) = requirement1_violation_naive(s, p.d) {
        return Err(format!("entry fails Requirement 1 (naive): {v:?}"));
    }
    if let Some(v) = requirement2_violation_naive(s, p.d) {
        return Err(format!("entry fails Requirement 2 (naive): {v:?}"));
    }
    // CFF oracle: transmit sets over the frame must be D-cover-free.
    let blocks: Vec<_> = (0..p.n).map(|x| s.tran(x).clone()).collect();
    let fam = ttdc_combinatorics::CoverFreeFamily::from_blocks(s.frame_length(), blocks);
    if !fam.is_d_cover_free(p.d) {
        return Err(format!("transmit sets are not {}-cover-free", p.d));
    }
    Ok(())
}

/// Path of the entry for `p` under `dir`.
pub fn entry_path(dir: &Path, p: &SynthProblem) -> PathBuf {
    dir.join(entry_file_name(p))
}

/// Atomically writes `e` under `dir` (creating it), returning the path.
pub fn write_entry(dir: &Path, e: &CatalogEntry) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = entry_path(dir, &e.problem);
    ttdc_util::write_atomic(&path, entry_to_text(e).as_bytes())?;
    Ok(path)
}

/// Loads the entry for `p` from `dir`. `Ok(None)` when no file exists;
/// `Err` when a file exists but does not parse.
pub fn load_entry(dir: &Path, p: &SynthProblem) -> Result<Option<CatalogEntry>, String> {
    let path = entry_path(dir, p);
    match std::fs::read_to_string(&path) {
        Ok(text) => entry_from_text(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

/// Loads every `*.sched` entry under `dir`, sorted by file name.
/// Unreadable or unparsable files surface as `Err` entries so a validator
/// can fail loudly instead of skipping them.
pub fn load_all(dir: &Path) -> Vec<(PathBuf, Result<CatalogEntry, String>)> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "sched"))
            .collect(),
        Err(_) => Vec::new(),
    };
    paths.sort();
    paths
        .into_iter()
        .map(|p| {
            let parsed = std::fs::read_to_string(&p)
                .map_err(|e| e.to_string())
                .and_then(|text| entry_from_text(&text));
            (p, parsed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthOptions};

    fn sample_entry() -> CatalogEntry {
        let p = SynthProblem::new(5, 1, 1, 2);
        let opts = SynthOptions::default();
        let out = synthesize(&p, &opts);
        CatalogEntry {
            problem: p,
            fingerprint: out.fingerprint,
            schedule: out.schedule,
            exact: out.stats.exact,
            nodes: out.stats.nodes,
            source: "synth".to_string(),
            config: Some(opts.search.config_string()),
        }
    }

    #[test]
    fn entries_round_trip_byte_identically() {
        let e = sample_entry();
        let text = entry_to_text(&e);
        assert!(text.contains("# search bound="), "config line present");
        let back = entry_from_text(&text).unwrap();
        assert_eq!(e, back);
        assert_eq!(text, entry_to_text(&back), "byte-identical round trip");
    }

    #[test]
    fn parser_accepts_both_header_versions() {
        // New header: with the `# search` provenance line.
        let e = sample_entry();
        let with_config = entry_to_text(&e);
        let parsed = entry_from_text(&with_config).unwrap();
        assert_eq!(
            parsed.config.as_deref(),
            Some(SynthOptions::default().search.config_string().as_str())
        );

        // Old (pre-PR-10) header: no `# search` line at all. Parses to
        // `config: None` and still round-trips byte-identically.
        let mut old = e.clone();
        old.config = None;
        let without_config = entry_to_text(&old);
        assert!(!without_config.contains("# search"));
        let parsed = entry_from_text(&without_config).unwrap();
        assert_eq!(parsed, old);
        assert_eq!(entry_to_text(&parsed), without_config);
    }

    #[test]
    fn validation_accepts_good_and_rejects_tampered() {
        let e = sample_entry();
        let mut cache = VerifyCache::new();
        validate_entry(&e, &mut cache).unwrap();
        // Tampered fingerprint.
        let mut bad = e.clone();
        bad.fingerprint ^= 1;
        assert!(validate_entry(&bad, &mut cache)
            .unwrap_err()
            .contains("fingerprint"));
        // Truncated schedule: loses transparency.
        let mut bad = e.clone();
        bad.schedule = bad.schedule.truncated(1);
        bad.fingerprint = bad.schedule.canonical_fingerprint();
        assert!(validate_entry(&bad, &mut cache).is_err());
    }

    #[test]
    fn write_load_cycle_preserves_entries() {
        let dir = std::env::temp_dir().join(format!("ttdc-catalog-test-{}", std::process::id()));
        let e = sample_entry();
        let path = write_entry(&dir, &e).unwrap();
        assert_eq!(path, entry_path(&dir, &e.problem));
        let loaded = load_entry(&dir, &e.problem).unwrap().unwrap();
        assert_eq!(e, loaded);
        let all = load_all(&dir);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1.as_ref().unwrap(), &e);
        // Missing point: None, not an error.
        let other = SynthProblem::new(6, 1, 1, 2);
        assert!(load_entry(&dir, &other).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_entries_error_with_context() {
        assert!(entry_from_text("").is_err());
        assert!(entry_from_text("# ttdc-catalog v2\n").is_err());
        let e = sample_entry();
        let good = entry_to_text(&e);
        // Header/body disagreement is caught.
        let broken = good.replace("# n=5 ", "# n=6 ");
        assert!(entry_from_text(&broken).unwrap_err().contains("n=6"));
    }
}
