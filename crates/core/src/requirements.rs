//! The topology-transparency requirements of §4 of the paper.
//!
//! * **Requirement 1** (Colbourn-Ling-Syrotiuk): a *non-sleeping* `⟨T⟩` is
//!   topology-transparent for `N_n^D` iff for every node `x` and every set
//!   `Y` of `D` other nodes, `freeSlots(x, Y) ≠ ∅`.
//! * **Requirement 2** (Dukes-Colbourn-Syrotiuk): a general `⟨T,R⟩` is
//!   topology-transparent iff for all `x ≠ y` and every set of `d ≤ D−1`
//!   interferers, `∪_i σ(y_i, y) ⊉ σ(x, y)`.
//! * **Requirement 3** (this paper): equivalently, for every `x` and every
//!   `D`-set `Y`, `freeSlots(x, Y)` is non-empty **and** meets `recv(y_k)`
//!   for every `y_k ∈ Y`.
//!
//! Theorem 1 proves Requirements 2 and 3 equivalent; the property test
//! `req2_iff_req3` in this module checks exactly that, and experiment E1
//! sweeps it over constructed schedules.
//!
//! # Verifier engine
//!
//! The exhaustive checkers run through the incremental subset engine in
//! `ttdc-util`: subsets are enumerated in **revolving-door order**
//! ([`for_each_subset_delta`], one element swapped per step) and the running
//! slot-union is maintained by a [`CoverCounter`] over candidate sets
//! pre-masked to the target, so a step costs `O(|masked set|)` instead of a
//! `d`-way union rebuild over the frame. Two witness-safe prunes run before
//! each enumeration: the *full-pool* check (if even the union of every
//! candidate misses a target slot, no subset can cover) and the *counting
//! bound* (if the `d` largest masked sets total fewer slots than the
//! target, no `d` of them can cover). Both only skip scopes that provably
//! contain no witness.
//!
//! The outer quantifier over the transmitter `x` fans out across the rayon
//! pool under the **deterministic-witness rule**: the reported violation is
//! the minimum over `(x, y, subset-rank)` in revolving-door rank, so the
//! answer is bit-identical at any thread count (an `AtomicUsize` lets
//! larger `x` bail out early without affecting which witness wins). The
//! `*_naive` twins enumerate in the same order but rebuild every union from
//! scratch — they are the reference the proptest equivalence suite and the
//! `bench_verify` speedup/identity harness compare against.

use crate::schedule::Schedule;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use ttdc_util::{for_each_subset_delta, BitSet, CoverCounter, SubsetEvent};

/// A witness that a schedule is **not** topology-transparent: transmissions
/// from `x` to `y` (when `y`'s other neighbours are `interferers`) are never
/// guaranteed to succeed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The transmitter.
    pub x: usize,
    /// The intended receiver (`None` for Requirement-1 violations, which
    /// quantify over the whole neighbourhood at once).
    pub y: Option<usize>,
    /// The other nodes in `y`'s neighbourhood.
    pub interferers: Vec<usize>,
}

/// Fills `out` with `[0, n) − excl` (ascending), reusing its allocation.
pub(crate) fn pool_excluding_into(n: usize, excl: &[usize], out: &mut Vec<usize>) {
    out.clear();
    out.extend((0..n).filter(|v| !excl.contains(v)));
}

/// Per-transmitter scratch for the incremental scans: the candidate pool,
/// the candidates' slot sets masked to the current target, and the cover
/// counter — allocated once per `x` work item, reused across `(y, S)`.
struct ScanScratch {
    pool: Vec<usize>,
    masked: Vec<BitSet>,
    sizes: Vec<usize>,
    all_union: BitSet,
    counter: CoverCounter,
}

impl ScanScratch {
    fn new(n: usize, l: usize) -> Self {
        ScanScratch {
            pool: Vec::with_capacity(n),
            masked: vec![BitSet::new(l); n],
            sizes: Vec::with_capacity(n),
            all_union: BitSet::new(l),
            counter: CoverCounter::new(l),
        }
    }

    /// Masks `source(z)` to `target` for every pool candidate `z` and
    /// returns `true` if a `d`-subset of the pool could still cover
    /// `target` — i.e. neither witness-safe prune fires: the union of *all*
    /// masked candidates covers the target (full-pool check), and the `d`
    /// largest masked sets total at least `|target|` slots (counting
    /// bound).
    fn mask_and_prune<'s>(
        &mut self,
        target: &BitSet,
        d: usize,
        source: impl Fn(usize) -> &'s BitSet,
    ) -> bool {
        self.sizes.clear();
        self.all_union.clear();
        for &z in &self.pool {
            let m = &mut self.masked[z];
            m.clone_from(source(z));
            m.intersect_with(target);
            self.sizes.push(m.len());
            self.all_union.union_with(m);
        }
        if !target.difference_is_empty(&self.all_union) {
            return false;
        }
        self.sizes.sort_unstable_by(|a, b| b.cmp(a));
        self.sizes.iter().take(d).sum::<usize>() >= target.len()
    }
}

/// Runs the revolving-door enumeration over the scratch's pool, keeping the
/// cover counter in sync, and calls `visit(subset, counter)` per subset;
/// `visit` returning `false` aborts.
fn scan_subsets(
    scratch: &mut ScanScratch,
    d: usize,
    mut visit: impl FnMut(&[usize], &CoverCounter) -> bool,
) {
    let ScanScratch {
        pool,
        masked,
        counter,
        ..
    } = scratch;
    for_each_subset_delta(pool, d, |ev| match ev {
        SubsetEvent::Add(z) => {
            counter.add(&masked[z]);
            true
        }
        SubsetEvent::Remove(z) => {
            counter.remove(&masked[z]);
            true
        }
        SubsetEvent::Visit(ys) => visit(ys, counter),
    });
}

/// Parallel outer loop over the transmitter with deterministic first-witness
/// selection: `scan(x)` returns `x`'s first witness (in `(y, subset-rank)`
/// order); the global answer is the witness of the smallest such `x`,
/// regardless of thread count. The atomic lets transmitters above an
/// already-found witness skip their scan entirely — a pure speedup, since
/// their result could never win.
fn first_witness_over_x(
    n: usize,
    scan: impl Fn(usize) -> Option<Violation> + Sync,
) -> Option<Violation> {
    let best_x = AtomicUsize::new(usize::MAX);
    let per_x: Vec<Option<Violation>> = (0..n)
        .into_par_iter()
        .map(|x| {
            if best_x.load(Ordering::Relaxed) < x {
                return None;
            }
            let w = scan(x);
            if w.is_some() {
                best_x.fetch_min(x, Ordering::Relaxed);
            }
            w
        })
        .collect();
    per_x.into_iter().flatten().next()
}

/// Incremental Requirement-1 scan of one transmitter: first `Y` (in
/// revolving-door rank) whose transmissions cover `tran(x)`.
fn requirement1_scan_x(s: &Schedule, d: usize, x: usize) -> Option<Violation> {
    let n = s.num_nodes();
    let tx = s.tran(x);
    let mut scratch = ScanScratch::new(n, s.frame_length());
    pool_excluding_into(n, &[x], &mut scratch.pool);
    if scratch.pool.len() < d || !scratch.mask_and_prune(tx, d, |z| s.tran(z)) {
        return None;
    }
    scratch.counter.set_target(tx);
    let mut witness = None;
    scan_subsets(&mut scratch, d, |ys, counter| {
        if counter.is_covered() {
            witness = Some(Violation {
                x,
                y: None,
                interferers: ys.to_vec(),
            });
            false
        } else {
            true
        }
    });
    witness
}

/// Checks Requirement 1 on the transmission part of `s` (ignores `R`):
/// returns the first `(x, Y)` with `freeSlots(x, Y) = ∅`, or `None` if the
/// non-sleeping schedule `⟨T⟩` is topology-transparent for `N_n^D`.
pub fn requirement1_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    first_witness_over_x(s.num_nodes(), |x| requirement1_scan_x(s, d, x))
}

/// Reference implementation of [`requirement1_violation`]: same enumeration
/// order, but serial and with every slot-union rebuilt from scratch.
/// Returns the identical witness; exists for the equivalence proptests and
/// the `bench_verify` baseline.
pub fn requirement1_violation_naive(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let mut union = BitSet::new(s.frame_length());
    let mut pool = Vec::with_capacity(n);
    for x in 0..n {
        pool_excluding_into(n, &[x], &mut pool);
        let mut witness = None;
        for_each_subset_delta(&pool, d, |ev| {
            if let SubsetEvent::Visit(ys) = ev {
                union.clear();
                for &y in ys {
                    union.union_with(s.tran(y));
                }
                if s.tran(x).difference_len(&union) == 0 {
                    witness = Some(ys.to_vec());
                    return false;
                }
            }
            true
        });
        if let Some(ys) = witness {
            return Some(Violation {
                x,
                y: None,
                interferers: ys,
            });
        }
    }
    None
}

/// `true` if `⟨T⟩` satisfies Requirement 1 for degree bound `d`.
pub fn satisfies_requirement1(s: &Schedule, d: usize) -> bool {
    requirement1_violation(s, d).is_none()
}

/// The σ-table: `σ(a, b) = tran(a) ∩ recv(b)` for every ordered pair,
/// cached once per scan (the Requirement-2 sweep reads each entry
/// `Θ(n · C(n−2, d))` times).
fn sigma_table(s: &Schedule) -> Vec<BitSet> {
    let n = s.num_nodes();
    let mut table = Vec::with_capacity(n * n);
    for a in 0..n {
        for b in 0..n {
            table.push(s.sigma(a, b));
        }
    }
    table
}

/// Incremental Requirement-2 scan of one transmitter against a precomputed
/// σ-table.
fn requirement2_scan_x(s: &Schedule, sigma: &[BitSet], dd: usize, x: usize) -> Option<Violation> {
    let n = s.num_nodes();
    let mut scratch = ScanScratch::new(n, s.frame_length());
    for y in 0..n {
        if y == x {
            continue;
        }
        let sigma_xy = &sigma[x * n + y];
        pool_excluding_into(n, &[x, y], &mut scratch.pool);
        if !scratch.mask_and_prune(sigma_xy, dd, |yi| &sigma[yi * n + y]) {
            continue;
        }
        scratch.counter.set_target(sigma_xy);
        let mut witness = None;
        scan_subsets(&mut scratch, dd, |ys, counter| {
            if counter.is_covered() {
                witness = Some(ys.to_vec());
                false
            } else {
                true
            }
        });
        if let Some(ys) = witness {
            return Some(Violation {
                x,
                y: Some(y),
                interferers: ys,
            });
        }
    }
    None
}

/// Checks Requirement 2: returns the first `(x, y, {y_1..y_d})` whose
/// σ-union covers `σ(x, y)`, or `None` if the schedule is
/// topology-transparent for `N_n^D`.
///
/// The requirement quantifies over all `d ≤ D−1`; since the σ-union grows
/// monotonically with the interferer set, it suffices to check the largest
/// admissible `d`, namely `min(D−1, n−2)`.
pub fn requirement2_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let dd = (d - 1).min(n.saturating_sub(2));
    let sigma = sigma_table(s);
    first_witness_over_x(n, |x| requirement2_scan_x(s, &sigma, dd, x))
}

/// Reference implementation of [`requirement2_violation`]: same enumeration
/// order, serial, σ-sets recomputed and unions rebuilt per subset.
pub fn requirement2_violation_naive(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let dd = (d - 1).min(n.saturating_sub(2));
    let mut union = BitSet::new(s.frame_length());
    let mut pool = Vec::with_capacity(n);
    for x in 0..n {
        for y in 0..n {
            if x == y {
                continue;
            }
            let sigma_xy = s.sigma(x, y);
            pool_excluding_into(n, &[x, y], &mut pool);
            let mut witness = None;
            for_each_subset_delta(&pool, dd, |ev| {
                if let SubsetEvent::Visit(ys) = ev {
                    union.clear();
                    for &yi in ys {
                        union.union_with(&s.sigma(yi, y));
                    }
                    if sigma_xy.is_subset(&union) {
                        witness = Some(ys.to_vec());
                        return false;
                    }
                }
                true
            });
            if let Some(ys) = witness {
                return Some(Violation {
                    x,
                    y: Some(y),
                    interferers: ys,
                });
            }
        }
    }
    None
}

/// `true` if the schedule satisfies Requirement 2 for degree bound `d`.
pub fn satisfies_requirement2(s: &Schedule, d: usize) -> bool {
    requirement2_violation(s, d).is_none()
}

/// Incremental Requirement-3 scan of one transmitter: maintains
/// `freeSlots(x, Y) = tran(x) − ∪ tran(y)` as the cover counter's residual
/// and tests each `y_k`'s listening set against it.
fn requirement3_scan_x(s: &Schedule, d: usize, x: usize) -> Option<Violation> {
    let n = s.num_nodes();
    let tx = s.tran(x);
    let mut scratch = ScanScratch::new(n, s.frame_length());
    pool_excluding_into(n, &[x], &mut scratch.pool);
    if scratch.pool.len() < d {
        return None;
    }
    // No prune here: Requirement 3 fails on *uncovered-but-unheard* slots,
    // which the coverage bounds say nothing about. Masking still applies.
    scratch.sizes.clear();
    for i in 0..scratch.pool.len() {
        let z = scratch.pool[i];
        scratch.masked[z].clone_from(s.tran(z));
        scratch.masked[z].intersect_with(tx);
    }
    scratch.counter.set_target(tx);
    let mut witness = None;
    scan_subsets(&mut scratch, d, |ys, counter| {
        // freeSlots(x, Y) is exactly the residual target − union.
        let free = counter.uncovered();
        // Condition (2): every y_k must be able to listen in a free slot.
        // (Condition (1), freeSlots ≠ ∅, is implied.)
        for &yk in ys {
            if s.recv(yk).is_disjoint(free) {
                witness = Some(Violation {
                    x,
                    y: Some(yk),
                    interferers: ys.iter().copied().filter(|&v| v != yk).collect(),
                });
                return false;
            }
        }
        true
    });
    witness
}

/// Checks Requirement 3: returns the first `(x, Y, y_k)` with
/// `recv(y_k) ∩ freeSlots(x, Y) = ∅`, or `None` if the schedule is
/// topology-transparent for `N_n^D`.
pub fn requirement3_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    first_witness_over_x(s.num_nodes(), |x| requirement3_scan_x(s, d, x))
}

/// Reference implementation of [`requirement3_violation`]: same enumeration
/// order, serial, `freeSlots` rebuilt from scratch per subset.
pub fn requirement3_violation_naive(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let mut free = BitSet::new(s.frame_length());
    let mut pool = Vec::with_capacity(n);
    for x in 0..n {
        pool_excluding_into(n, &[x], &mut pool);
        let mut witness = None;
        for_each_subset_delta(&pool, d, |ev| {
            if let SubsetEvent::Visit(ys) = ev {
                free.clear();
                free.union_with(s.tran(x));
                for &y in ys {
                    free.difference_with(s.tran(y));
                }
                for &yk in ys {
                    if s.recv(yk).intersection_len(&free) == 0 {
                        witness = Some((yk, ys.to_vec()));
                        return false;
                    }
                }
            }
            true
        });
        if let Some((yk, ys)) = witness {
            return Some(Violation {
                x,
                y: Some(yk),
                interferers: ys.into_iter().filter(|&v| v != yk).collect(),
            });
        }
    }
    None
}

/// `true` if the schedule satisfies Requirement 3 for degree bound `d`.
pub fn satisfies_requirement3(s: &Schedule, d: usize) -> bool {
    requirement3_violation(s, d).is_none()
}

/// The paper's definition of topology transparency for `N_n^D` — an alias
/// for Requirement 3 (Theorem 1 shows it equivalent to Requirement 2).
pub fn is_topology_transparent(s: &Schedule, d: usize) -> bool {
    satisfies_requirement3(s, d)
}

/// Parallel Requirement-3 check: the outer quantifier over `x` fans out
/// across the rayon pool. Exact (not sampled); use for medium `n` where the
/// serial scan is the bottleneck.
pub fn is_topology_transparent_par(s: &Schedule, d: usize) -> bool {
    (0..s.num_nodes())
        .into_par_iter()
        .all(|x| requirement3_scan_x(s, d, x).is_none())
}

/// Randomized spot check: draws `samples` random `(x, Y)` pairs and tests
/// Requirement 3 on each. Finding a violation proves the schedule is *not*
/// topology-transparent; finding none is only evidence. Deterministic in
/// `seed`; used for large instances where `C(n−1, D)` is out of reach.
pub fn spot_check_topology_transparent(
    s: &Schedule,
    d: usize,
    samples: usize,
    seed: u64,
) -> Option<Violation> {
    let n = s.num_nodes();
    if n < 2 || d + 1 > n {
        return None;
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut free = BitSet::new(s.frame_length());
    for _ in 0..samples {
        let x = (next() % n as u64) as usize;
        // Floyd's algorithm for a D-subset of V − {x}.
        let mut ys: Vec<usize> = Vec::with_capacity(d);
        while ys.len() < d {
            let c = (next() % n as u64) as usize;
            if c != x && !ys.contains(&c) {
                ys.push(c);
            }
        }
        free.clear();
        free.union_with(s.tran(x));
        for &y in &ys {
            free.difference_with(s.tran(y));
        }
        for &yk in &ys {
            if s.recv(yk).intersection_len(&free) == 0 {
                return Some(Violation {
                    x,
                    y: Some(yk),
                    interferers: ys.iter().copied().filter(|&v| v != yk).collect(),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttdc_combinatorics::CoverFreeFamily;
    use ttdc_util::BitSet;

    fn identity_schedule(n: usize) -> Schedule {
        Schedule::from_cff(&CoverFreeFamily::identity(n))
    }

    fn polynomial_schedule(q: usize, k: u32, n: u64) -> Schedule {
        let gf = ttdc_combinatorics::Gf::new(q).unwrap();
        Schedule::from_cff(&CoverFreeFamily::from_polynomials(&gf, k, n))
    }

    #[test]
    fn identity_satisfies_everything() {
        let s = identity_schedule(6);
        for d in 1..=5 {
            assert!(satisfies_requirement1(&s, d), "req1 d={d}");
            assert!(satisfies_requirement2(&s, d), "req2 d={d}");
            assert!(satisfies_requirement3(&s, d), "req3 d={d}");
            assert!(is_topology_transparent(&s, d));
            assert!(is_topology_transparent_par(&s, d));
            assert!(spot_check_topology_transparent(&s, d, 200, 7).is_none());
        }
    }

    #[test]
    fn polynomial_schedule_transparent_up_to_guarantee() {
        // q = 5, k = 1 → guaranteed for D ≤ 4; n = 25 nodes.
        let s = polynomial_schedule(5, 1, 25);
        assert!(satisfies_requirement1(&s, 2));
        assert!(satisfies_requirement3(&s, 2));
        assert!(satisfies_requirement2(&s, 2));
        assert!(satisfies_requirement3(&s, 4));
    }

    #[test]
    fn polynomial_schedule_fails_beyond_guarantee() {
        // q = 3, k = 1, all 9 nodes: guaranteed only for D ≤ 2; D = 3 must
        // produce a concrete violation.
        let s = polynomial_schedule(3, 1, 9);
        assert!(satisfies_requirement3(&s, 2));
        let v = requirement1_violation(&s, 3).expect("D=3 must fail");
        assert_eq!(v.interferers.len(), 3);
        assert!(requirement3_violation(&s, 3).is_some());
        assert!(requirement2_violation(&s, 3).is_some());
        assert!(!is_topology_transparent_par(&s, 3));
        assert!(
            spot_check_topology_transparent(&s, 3, 5000, 42).is_some(),
            "a dense violation set should be hit by 5000 samples"
        );
    }

    #[test]
    fn incremental_agrees_with_naive_on_structured_cases() {
        let cases: Vec<(Schedule, usize)> = vec![
            (identity_schedule(5), 2),
            (polynomial_schedule(3, 1, 9), 2),
            (polynomial_schedule(3, 1, 9), 3),
            (polynomial_schedule(4, 1, 16), 3),
            (polynomial_schedule(5, 2, 20), 2),
        ];
        for (s, d) in &cases {
            assert_eq!(
                requirement1_violation(s, *d),
                requirement1_violation_naive(s, *d),
                "req1 n={} d={d}",
                s.num_nodes()
            );
            assert_eq!(
                requirement2_violation(s, *d),
                requirement2_violation_naive(s, *d),
                "req2 n={} d={d}",
                s.num_nodes()
            );
            assert_eq!(
                requirement3_violation(s, *d),
                requirement3_violation_naive(s, *d),
                "req3 n={} d={d}",
                s.num_nodes()
            );
        }
    }

    #[test]
    fn sleeping_schedule_can_break_transparency() {
        // Start from the identity schedule on 4 nodes but make node 3 sleep
        // always (remove it from every R): transmissions to 3 can never
        // succeed, so Requirement 3 (and 2) must fail while Requirement 1
        // (which ignores R) still holds.
        let n = 4;
        let t: Vec<BitSet> = (0..n).map(|i| BitSet::from_iter(n, [i])).collect();
        let r: Vec<BitSet> = (0..n)
            .map(|i| BitSet::from_iter(n, (0..n).filter(|&v| v != i && v != 3)))
            .collect();
        let s = Schedule::new(n, t, r);
        assert!(satisfies_requirement1(&s, 2));
        let v3 = requirement3_violation(&s, 2).unwrap();
        assert_eq!(v3.y, Some(3));
        let v2 = requirement2_violation(&s, 2).unwrap();
        assert_eq!(v2.y, Some(3));
    }

    #[test]
    fn req2_and_req3_agree_on_structured_cases() {
        // Theorem 1 (equivalence), exercised on a mix of transparent and
        // non-transparent schedules.
        let cases: Vec<(Schedule, usize)> = vec![
            (identity_schedule(5), 2),
            (identity_schedule(5), 3),
            (polynomial_schedule(3, 1, 9), 2),
            (polynomial_schedule(3, 1, 9), 3),
            (polynomial_schedule(4, 1, 16), 3),
            (polynomial_schedule(5, 2, 20), 2),
        ];
        for (s, d) in &cases {
            assert_eq!(
                satisfies_requirement2(s, *d),
                satisfies_requirement3(s, *d),
                "n={} d={d}",
                s.num_nodes()
            );
        }
    }

    #[test]
    fn requirement2_catches_empty_sigma() {
        // Node 1 never listens while 0 transmits: σ(0,1) = ∅, so even a
        // single interferer's (empty or not) σ-union covers it.
        let t = vec![
            BitSet::from_iter(3, [0]),
            BitSet::from_iter(3, [1]),
            BitSet::from_iter(3, [2]),
        ];
        let r = vec![
            BitSet::from_iter(3, [2]), // 1 does not listen to 0
            BitSet::from_iter(3, [0, 2]),
            BitSet::from_iter(3, [0, 1]),
        ];
        let s = Schedule::new(3, t, r);
        let v = requirement2_violation(&s, 2).unwrap();
        assert_eq!((v.x, v.y), (0, Some(1)));
    }

    #[test]
    fn small_universe_edge_cases() {
        // n = 2, D = 1: round-robin pair is transparent.
        let t = vec![BitSet::from_iter(2, [0]), BitSet::from_iter(2, [1])];
        let s = Schedule::non_sleeping(2, t);
        assert!(satisfies_requirement1(&s, 1));
        assert!(satisfies_requirement2(&s, 1));
        assert!(satisfies_requirement3(&s, 1));
        // D larger than n−1: vacuous (no D-subset of other nodes exists).
        assert!(satisfies_requirement3(&s, 5));
        assert!(spot_check_topology_transparent(&s, 5, 10, 1).is_none());
    }

    #[test]
    fn spot_check_is_deterministic_in_seed() {
        let s = polynomial_schedule(3, 1, 9);
        let a = spot_check_topology_transparent(&s, 3, 100, 123);
        let b = spot_check_topology_transparent(&s, 3, 100, 123);
        assert_eq!(a, b);
    }
}
