//! The topology-transparency requirements of §4 of the paper.
//!
//! * **Requirement 1** (Colbourn-Ling-Syrotiuk): a *non-sleeping* `⟨T⟩` is
//!   topology-transparent for `N_n^D` iff for every node `x` and every set
//!   `Y` of `D` other nodes, `freeSlots(x, Y) ≠ ∅`.
//! * **Requirement 2** (Dukes-Colbourn-Syrotiuk): a general `⟨T,R⟩` is
//!   topology-transparent iff for all `x ≠ y` and every set of `d ≤ D−1`
//!   interferers, `∪_i σ(y_i, y) ⊉ σ(x, y)`.
//! * **Requirement 3** (this paper): equivalently, for every `x` and every
//!   `D`-set `Y`, `freeSlots(x, Y)` is non-empty **and** meets `recv(y_k)`
//!   for every `y_k ∈ Y`.
//!
//! Theorem 1 proves Requirements 2 and 3 equivalent; the property test
//! `req2_iff_req3` in this module checks exactly that, and experiment E1
//! sweeps it over constructed schedules.

use crate::schedule::Schedule;
use rayon::prelude::*;
use ttdc_util::{for_each_subset_of, BitSet};

/// A witness that a schedule is **not** topology-transparent: transmissions
/// from `x` to `y` (when `y`'s other neighbours are `interferers`) are never
/// guaranteed to succeed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The transmitter.
    pub x: usize,
    /// The intended receiver (`None` for Requirement-1 violations, which
    /// quantify over the whole neighbourhood at once).
    pub y: Option<usize>,
    /// The other nodes in `y`'s neighbourhood.
    pub interferers: Vec<usize>,
}

fn pool_excluding(n: usize, excl: &[usize]) -> Vec<usize> {
    (0..n).filter(|v| !excl.contains(v)).collect()
}

/// Checks Requirement 1 on the transmission part of `s` (ignores `R`):
/// returns the first `(x, Y)` with `freeSlots(x, Y) = ∅`, or `None` if the
/// non-sleeping schedule `⟨T⟩` is topology-transparent for `N_n^D`.
pub fn requirement1_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let mut union = BitSet::new(s.frame_length());
    for x in 0..n {
        let pool = pool_excluding(n, &[x]);
        let mut witness = None;
        for_each_subset_of(&pool, d, |ys| {
            union.clear();
            for &y in ys {
                union.union_with(s.tran(y));
            }
            if s.tran(x).difference_len(&union) == 0 {
                witness = Some(ys.to_vec());
                false
            } else {
                true
            }
        });
        if let Some(ys) = witness {
            return Some(Violation {
                x,
                y: None,
                interferers: ys,
            });
        }
    }
    None
}

/// `true` if `⟨T⟩` satisfies Requirement 1 for degree bound `d`.
pub fn satisfies_requirement1(s: &Schedule, d: usize) -> bool {
    requirement1_violation(s, d).is_none()
}

/// Checks Requirement 2: returns the first `(x, y, {y_1..y_d})` whose
/// σ-union covers `σ(x, y)`, or `None` if the schedule is
/// topology-transparent for `N_n^D`.
///
/// The requirement quantifies over all `d ≤ D−1`; since the σ-union grows
/// monotonically with the interferer set, it suffices to check the largest
/// admissible `d`, namely `min(D−1, n−2)`.
pub fn requirement2_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    let n = s.num_nodes();
    let dd = (d - 1).min(n.saturating_sub(2));
    let mut union = BitSet::new(s.frame_length());
    for x in 0..n {
        for y in 0..n {
            if x == y {
                continue;
            }
            let sigma_xy = s.sigma(x, y);
            let pool = pool_excluding(n, &[x, y]);
            let mut witness = None;
            for_each_subset_of(&pool, dd, |ys| {
                union.clear();
                for &yi in ys {
                    union.union_with(&s.sigma(yi, y));
                }
                if sigma_xy.is_subset(&union) {
                    witness = Some(ys.to_vec());
                    false
                } else {
                    true
                }
            });
            if let Some(ys) = witness {
                return Some(Violation {
                    x,
                    y: Some(y),
                    interferers: ys,
                });
            }
        }
    }
    None
}

/// `true` if the schedule satisfies Requirement 2 for degree bound `d`.
pub fn satisfies_requirement2(s: &Schedule, d: usize) -> bool {
    requirement2_violation(s, d).is_none()
}

/// Checks Requirement 3: returns the first `(x, Y, y_k)` with
/// `recv(y_k) ∩ freeSlots(x, Y) = ∅`, or `None` if the schedule is
/// topology-transparent for `N_n^D`.
pub fn requirement3_violation(s: &Schedule, d: usize) -> Option<Violation> {
    assert!(d >= 1, "degree bound must be at least 1");
    requirement3_violation_for(s, d, 0, s.num_nodes())
}

/// Requirement-3 scan restricted to transmitters `x ∈ [x_lo, x_hi)` — the
/// work item of the parallel checker.
fn requirement3_violation_for(
    s: &Schedule,
    d: usize,
    x_lo: usize,
    x_hi: usize,
) -> Option<Violation> {
    let n = s.num_nodes();
    let mut free = BitSet::new(s.frame_length());
    for x in x_lo..x_hi {
        let pool = pool_excluding(n, &[x]);
        let mut witness = None;
        for_each_subset_of(&pool, d, |ys| {
            free.clear();
            free.union_with(s.tran(x));
            for &y in ys {
                free.difference_with(s.tran(y));
            }
            // Condition (2): every y_k must be able to listen in a free slot.
            // (Condition (1), freeSlots ≠ ∅, is implied.)
            for &yk in ys {
                if s.recv(yk).intersection_len(&free) == 0 {
                    witness = Some((yk, ys.to_vec()));
                    return false;
                }
            }
            true
        });
        if let Some((yk, ys)) = witness {
            return Some(Violation {
                x,
                y: Some(yk),
                interferers: ys.into_iter().filter(|&v| v != yk).collect(),
            });
        }
    }
    None
}

/// `true` if the schedule satisfies Requirement 3 for degree bound `d`.
pub fn satisfies_requirement3(s: &Schedule, d: usize) -> bool {
    requirement3_violation(s, d).is_none()
}

/// The paper's definition of topology transparency for `N_n^D` — an alias
/// for Requirement 3 (Theorem 1 shows it equivalent to Requirement 2).
pub fn is_topology_transparent(s: &Schedule, d: usize) -> bool {
    satisfies_requirement3(s, d)
}

/// Parallel Requirement-3 check: the outer quantifier over `x` fans out
/// across the rayon pool. Exact (not sampled); use for medium `n` where the
/// serial scan is the bottleneck.
pub fn is_topology_transparent_par(s: &Schedule, d: usize) -> bool {
    (0..s.num_nodes())
        .into_par_iter()
        .all(|x| requirement3_violation_for(s, d, x, x + 1).is_none())
}

/// Randomized spot check: draws `samples` random `(x, Y)` pairs and tests
/// Requirement 3 on each. Finding a violation proves the schedule is *not*
/// topology-transparent; finding none is only evidence. Deterministic in
/// `seed`; used for large instances where `C(n−1, D)` is out of reach.
pub fn spot_check_topology_transparent(
    s: &Schedule,
    d: usize,
    samples: usize,
    seed: u64,
) -> Option<Violation> {
    let n = s.num_nodes();
    if n < 2 || d + 1 > n {
        return None;
    }
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut free = BitSet::new(s.frame_length());
    for _ in 0..samples {
        let x = (next() % n as u64) as usize;
        // Floyd's algorithm for a D-subset of V − {x}.
        let mut ys: Vec<usize> = Vec::with_capacity(d);
        while ys.len() < d {
            let c = (next() % n as u64) as usize;
            if c != x && !ys.contains(&c) {
                ys.push(c);
            }
        }
        free.clear();
        free.union_with(s.tran(x));
        for &y in &ys {
            free.difference_with(s.tran(y));
        }
        for &yk in &ys {
            if s.recv(yk).intersection_len(&free) == 0 {
                return Some(Violation {
                    x,
                    y: Some(yk),
                    interferers: ys.iter().copied().filter(|&v| v != yk).collect(),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttdc_combinatorics::CoverFreeFamily;
    use ttdc_util::BitSet;

    fn identity_schedule(n: usize) -> Schedule {
        Schedule::from_cff(&CoverFreeFamily::identity(n))
    }

    fn polynomial_schedule(q: usize, k: u32, n: u64) -> Schedule {
        let gf = ttdc_combinatorics::Gf::new(q).unwrap();
        Schedule::from_cff(&CoverFreeFamily::from_polynomials(&gf, k, n))
    }

    #[test]
    fn identity_satisfies_everything() {
        let s = identity_schedule(6);
        for d in 1..=5 {
            assert!(satisfies_requirement1(&s, d), "req1 d={d}");
            assert!(satisfies_requirement2(&s, d), "req2 d={d}");
            assert!(satisfies_requirement3(&s, d), "req3 d={d}");
            assert!(is_topology_transparent(&s, d));
            assert!(is_topology_transparent_par(&s, d));
            assert!(spot_check_topology_transparent(&s, d, 200, 7).is_none());
        }
    }

    #[test]
    fn polynomial_schedule_transparent_up_to_guarantee() {
        // q = 5, k = 1 → guaranteed for D ≤ 4; n = 25 nodes.
        let s = polynomial_schedule(5, 1, 25);
        assert!(satisfies_requirement1(&s, 2));
        assert!(satisfies_requirement3(&s, 2));
        assert!(satisfies_requirement2(&s, 2));
        assert!(satisfies_requirement3(&s, 4));
    }

    #[test]
    fn polynomial_schedule_fails_beyond_guarantee() {
        // q = 3, k = 1, all 9 nodes: guaranteed only for D ≤ 2; D = 3 must
        // produce a concrete violation.
        let s = polynomial_schedule(3, 1, 9);
        assert!(satisfies_requirement3(&s, 2));
        let v = requirement1_violation(&s, 3).expect("D=3 must fail");
        assert_eq!(v.interferers.len(), 3);
        assert!(requirement3_violation(&s, 3).is_some());
        assert!(requirement2_violation(&s, 3).is_some());
        assert!(!is_topology_transparent_par(&s, 3));
        assert!(
            spot_check_topology_transparent(&s, 3, 5000, 42).is_some(),
            "a dense violation set should be hit by 5000 samples"
        );
    }

    #[test]
    fn sleeping_schedule_can_break_transparency() {
        // Start from the identity schedule on 4 nodes but make node 3 sleep
        // always (remove it from every R): transmissions to 3 can never
        // succeed, so Requirement 3 (and 2) must fail while Requirement 1
        // (which ignores R) still holds.
        let n = 4;
        let t: Vec<BitSet> = (0..n).map(|i| BitSet::from_iter(n, [i])).collect();
        let r: Vec<BitSet> = (0..n)
            .map(|i| BitSet::from_iter(n, (0..n).filter(|&v| v != i && v != 3)))
            .collect();
        let s = Schedule::new(n, t, r);
        assert!(satisfies_requirement1(&s, 2));
        let v3 = requirement3_violation(&s, 2).unwrap();
        assert_eq!(v3.y, Some(3));
        let v2 = requirement2_violation(&s, 2).unwrap();
        assert_eq!(v2.y, Some(3));
    }

    #[test]
    fn req2_and_req3_agree_on_structured_cases() {
        // Theorem 1 (equivalence), exercised on a mix of transparent and
        // non-transparent schedules.
        let cases: Vec<(Schedule, usize)> = vec![
            (identity_schedule(5), 2),
            (identity_schedule(5), 3),
            (polynomial_schedule(3, 1, 9), 2),
            (polynomial_schedule(3, 1, 9), 3),
            (polynomial_schedule(4, 1, 16), 3),
            (polynomial_schedule(5, 2, 20), 2),
        ];
        for (s, d) in &cases {
            assert_eq!(
                satisfies_requirement2(s, *d),
                satisfies_requirement3(s, *d),
                "n={} d={d}",
                s.num_nodes()
            );
        }
    }

    #[test]
    fn requirement2_catches_empty_sigma() {
        // Node 1 never listens while 0 transmits: σ(0,1) = ∅, so even a
        // single interferer's (empty or not) σ-union covers it.
        let t = vec![
            BitSet::from_iter(3, [0]),
            BitSet::from_iter(3, [1]),
            BitSet::from_iter(3, [2]),
        ];
        let r = vec![
            BitSet::from_iter(3, [2]), // 1 does not listen to 0
            BitSet::from_iter(3, [0, 2]),
            BitSet::from_iter(3, [0, 1]),
        ];
        let s = Schedule::new(3, t, r);
        let v = requirement2_violation(&s, 2).unwrap();
        assert_eq!((v.x, v.y), (0, Some(1)));
    }

    #[test]
    fn small_universe_edge_cases() {
        // n = 2, D = 1: round-robin pair is transparent.
        let t = vec![BitSet::from_iter(2, [0]), BitSet::from_iter(2, [1])];
        let s = Schedule::non_sleeping(2, t);
        assert!(satisfies_requirement1(&s, 1));
        assert!(satisfies_requirement2(&s, 1));
        assert!(satisfies_requirement3(&s, 1));
        // D larger than n−1: vacuous (no D-subset of other nodes exists).
        assert!(satisfies_requirement3(&s, 5));
        assert!(spot_check_topology_transparent(&s, 5, 10, 1).is_none());
    }

    #[test]
    fn spot_check_is_deterministic_in_seed() {
        let s = polynomial_schedule(3, 1, 9);
        let a = spot_check_topology_transparent(&s, 3, 100, 123);
        let b = spot_check_topology_transparent(&s, 3, 100, 123);
        assert_eq!(a, b);
    }
}
