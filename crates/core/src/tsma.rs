//! Ready-made topology-transparent non-sleeping schedules.
//!
//! The paper's construction takes a topology-transparent non-sleeping
//! schedule as *input* and cites the standard ways to obtain one
//! (orthogonal arrays / polynomials \[2, 13, 22\], Steiner systems \[3\],
//! cover-free families in general \[9, 5\]). This module packages those
//! constructions, all built from scratch in `ttdc-combinatorics`, behind a
//! single API keyed by `(n, D)`.

use crate::construct::{construct, Construction, PartitionStrategy};
use crate::schedule::Schedule;
use ttdc_combinatorics::{CoverFreeFamily, SteinerTripleSystem, TsmaParams};

/// Which non-sleeping substrate to build the duty-cycled schedule on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Polynomials over GF(q) (Ju-Li / orthogonal-array TSMA): frame `q²`,
    /// supports any `(n, D)` with parameters from [`TsmaParams::search`].
    Polynomial,
    /// Steiner triple systems (Colbourn-Ling-Syrotiuk): frame `v`, blocks of
    /// size 3, topology-transparent only for `D ≤ 2`.
    Steiner,
    /// One-node-per-slot TDMA: frame `n`, transparent for every `D ≤ n−1`,
    /// but the frame grows linearly in `n`.
    Identity,
}

/// A constructed non-sleeping schedule together with its provenance.
#[derive(Clone, Debug)]
pub struct NonSleepingSchedule {
    /// The schedule `⟨T⟩` (with `R[i] = V − T[i]`).
    pub schedule: Schedule,
    /// Which construction produced it.
    pub kind: SourceKind,
    /// The `(q, k)` parameters when `kind == Polynomial`.
    pub params: Option<TsmaParams>,
}

/// Builds the polynomial (orthogonal-array) TSMA schedule for `(n, D)`:
/// frame length `q²` with the smallest feasible prime power `q`.
pub fn build_polynomial(n: usize, d: usize) -> NonSleepingSchedule {
    let params = TsmaParams::search(n as u64, d as u64)
        .expect("n ≥ 1 and D ≥ 1 always have TSMA parameters");
    let cff = CoverFreeFamily::from_tsma_params(&params, n as u64);
    NonSleepingSchedule {
        schedule: Schedule::from_cff(&cff),
        kind: SourceKind::Polynomial,
        params: Some(params),
    }
}

/// Builds a Steiner-system schedule for `n` nodes: the smallest STS(v) with
/// at least `n` triples, truncated to `n` blocks. Topology-transparent for
/// `D ≤ 2` (triples pairwise intersect in ≤ 1 point).
pub fn build_steiner(n: usize) -> Result<NonSleepingSchedule, String> {
    if n == 0 {
        return Err("need at least one node".into());
    }
    let mut v = 7;
    loop {
        if (v % 6 == 1 || v % 6 == 3) && v * (v - 1) / 6 >= n {
            break;
        }
        v += 1;
    }
    let sts = SteinerTripleSystem::new(v)?;
    let blocks: Vec<_> = sts.triples()[..n]
        .iter()
        .map(|t| ttdc_util::BitSet::from_iter(v, t.iter().copied()))
        .collect();
    let cff = CoverFreeFamily::from_blocks(v, blocks);
    Ok(NonSleepingSchedule {
        schedule: Schedule::from_cff(&cff),
        kind: SourceKind::Steiner,
        params: None,
    })
}

/// Builds the trivial TDMA identity schedule: node `x` owns slot `x`.
pub fn build_identity(n: usize) -> NonSleepingSchedule {
    NonSleepingSchedule {
        schedule: Schedule::from_cff(&CoverFreeFamily::identity(n)),
        kind: SourceKind::Identity,
        params: None,
    }
}

/// Builds a non-sleeping schedule of the requested kind for `(n, D)`.
pub fn build(n: usize, d: usize, kind: SourceKind) -> Result<NonSleepingSchedule, String> {
    match kind {
        SourceKind::Polynomial => Ok(build_polynomial(n, d)),
        SourceKind::Steiner => {
            if d > 2 {
                return Err(format!(
                    "Steiner triple systems are only topology-transparent for D ≤ 2 (got D = {d})"
                ));
            }
            build_steiner(n)
        }
        SourceKind::Identity => Ok(build_identity(n)),
    }
}

/// One-call pipeline: build a polynomial non-sleeping schedule for
/// `(n, D)` and run the Figure-2 construction to get a topology-transparent
/// `(α_T, α_R)`-schedule. The quickstart API.
pub fn build_duty_cycled(
    n: usize,
    d: usize,
    alpha_t: usize,
    alpha_r: usize,
    strategy: PartitionStrategy,
) -> Construction {
    let ns = build_polynomial(n, d);
    construct(&ns.schedule, d, alpha_t, alpha_r, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::is_topology_transparent;

    #[test]
    fn polynomial_schedules_transparent_for_requested_degree() {
        for (n, d) in [(10usize, 2usize), (25, 3), (30, 2)] {
            let ns = build_polynomial(n, d);
            assert_eq!(ns.schedule.num_nodes(), n);
            assert!(ns.schedule.is_non_sleeping());
            let p = ns.params.unwrap();
            assert_eq!(ns.schedule.frame_length(), p.frame_length() as usize);
            assert!(
                is_topology_transparent(&ns.schedule, d),
                "n={n} d={d} params={p:?}"
            );
        }
    }

    #[test]
    fn steiner_schedules_transparent_for_d2() {
        for n in [5usize, 12, 20] {
            let ns = build_steiner(n).unwrap();
            assert_eq!(ns.schedule.num_nodes(), n);
            assert!(ns.schedule.is_non_sleeping());
            assert!(is_topology_transparent(&ns.schedule, 2), "n={n}");
            // Every node transmits exactly 3 slots per frame.
            for x in 0..n {
                assert_eq!(ns.schedule.tran(x).len(), 3);
            }
        }
    }

    #[test]
    fn steiner_frame_shorter_than_identity_for_large_n() {
        // The whole point of CFF schedules: frame grows like Θ(√n) (STS:
        // v(v−1)/6 ≥ n ⇒ v = O(√n)) instead of n.
        let n = 100;
        let sts = build_steiner(n).unwrap();
        let id = build_identity(n);
        assert!(sts.schedule.frame_length() < id.schedule.frame_length() / 3);
    }

    #[test]
    fn build_dispatch_and_guards() {
        assert!(build(10, 3, SourceKind::Steiner).is_err());
        assert!(build(10, 2, SourceKind::Steiner).is_ok());
        assert_eq!(
            build(10, 5, SourceKind::Identity).unwrap().kind,
            SourceKind::Identity
        );
        assert!(build_steiner(0).is_err());
        let poly = build(10, 3, SourceKind::Polynomial).unwrap();
        assert!(poly.params.is_some());
    }

    #[test]
    fn identity_transparent_for_all_degrees() {
        let ns = build_identity(7);
        for d in 1..7 {
            assert!(is_topology_transparent(&ns.schedule, d));
        }
    }

    #[test]
    fn one_call_pipeline_is_transparent_and_constrained() {
        let c = build_duty_cycled(20, 2, 3, 4, PartitionStrategy::RoundRobin);
        assert!(c.schedule.is_alpha_schedule(3, 4));
        assert!(is_topology_transparent(&c.schedule, 2));
        // Duty cycle is bounded by (α_T + α_R)/n.
        assert!(c.schedule.average_duty_cycle() <= (3.0 + 4.0) / 20.0 + 1e-12);
    }
}
