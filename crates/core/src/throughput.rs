//! Worst-case throughput (§5, Definitions 1–2 and Theorem 2).
//!
//! The paper measures schedules by their throughput in the *worst case*:
//! every node has exactly `D` neighbours and every neighbour is saturated.
//! `𝒯(x, y, S)` is the set of slots in which a transmission from `x` to `y`
//! is guaranteed to succeed when `y`'s other neighbours are `S`; the
//! *minimum* throughput (Definition 1) takes the worst `(x, y, S)`, the
//! *average* throughput (Definition 2) averages `|𝒯|` over all `(x, y, S)`.
//! Theorem 2 collapses the latter to a closed form that depends only on the
//! per-slot transmitter/receiver **counts** — this module implements both
//! the closed form and the brute-force enumeration it is validated against,
//! plus the fixed-topology variant used by the Figure-1 experiment.

use crate::schedule::Schedule;
use rayon::prelude::*;
use ttdc_util::{
    for_each_subset_delta, for_each_subset_of, BinomialTable, BitSet, CoverCounter, SubsetEvent,
};

/// `𝒯(x, y, S) = recv(y) ∩ freeSlots(x, {y} ∪ S)`: slots where `x → y` is
/// guaranteed to succeed when `y`'s other neighbours are `S`.
pub fn guaranteed_slots(s: &Schedule, x: usize, y: usize, others: &[usize]) -> BitSet {
    let mut out = s.recv(y).clone();
    out.intersect_with(s.tran(x));
    out.difference_with(s.tran(y));
    for &z in others {
        out.difference_with(s.tran(z));
    }
    out
}

/// Per-transmitter scratch for the incremental `(x, y, S)` sweeps: the
/// interferer pool, the base set `recv(y) ∩ tran(x) − tran(y)`, the pool's
/// transmit sets masked to the base, and the cover counter whose residual
/// is exactly `𝒯(x, y, S)`.
pub(crate) struct SweepScratch {
    pub(crate) pool: Vec<usize>,
    pub(crate) base: BitSet,
    pub(crate) masked: Vec<BitSet>,
    pub(crate) counter: CoverCounter,
}

impl SweepScratch {
    pub(crate) fn new(n: usize, l: usize) -> Self {
        SweepScratch {
            pool: Vec::with_capacity(n),
            base: BitSet::new(l),
            masked: vec![BitSet::new(l); n],
            counter: CoverCounter::new(l),
        }
    }

    /// Prepares the scratch for one `(x, y)` pair: rebuilds the pool and
    /// base set, masks the pool's transmit sets, and retargets the counter.
    pub(crate) fn prepare(&mut self, s: &Schedule, x: usize, y: usize) {
        let n = s.num_nodes();
        self.pool.clear();
        self.pool.extend((0..n).filter(|&v| v != x && v != y));
        self.base.clone_from(s.recv(y));
        self.base.intersect_with(s.tran(x));
        self.base.difference_with(s.tran(y));
        for &z in &self.pool {
            self.masked[z].clone_from(s.tran(z));
            self.masked[z].intersect_with(&self.base);
        }
        self.counter.set_target(&self.base);
    }

    /// Runs the revolving-door enumeration over `(D−1)`-sets of the pool,
    /// keeping `counter` in sync; `visit(counter)` sees
    /// `counter.deficit() = |𝒯(x, y, S)|` per subset and returns `false` to
    /// abort.
    pub(crate) fn sweep(&mut self, d: usize, mut visit: impl FnMut(&CoverCounter) -> bool) {
        let SweepScratch {
            pool,
            masked,
            counter,
            ..
        } = self;
        for_each_subset_delta(pool, d - 1, |ev| match ev {
            SubsetEvent::Add(z) => {
                counter.add(&masked[z]);
                true
            }
            SubsetEvent::Remove(z) => {
                counter.remove(&masked[z]);
                true
            }
            SubsetEvent::Visit(_) => visit(counter),
        });
    }

    /// Like [`sweep`](Self::sweep) but in **lexicographic** subset order —
    /// for callers that accumulate floating-point per subset and must
    /// reproduce the historical iteration order bit-for-bit
    /// (`average_access_delay`).
    pub(crate) fn sweep_lex(&mut self, d: usize, mut visit: impl FnMut(&CoverCounter) -> bool) {
        let SweepScratch {
            pool,
            masked,
            counter,
            ..
        } = self;
        ttdc_util::for_each_subset_delta_lex(pool, d - 1, |ev| match ev {
            SubsetEvent::Add(z) => {
                counter.add(&masked[z]);
                true
            }
            SubsetEvent::Remove(z) => {
                counter.remove(&masked[z]);
                true
            }
            SubsetEvent::Visit(_) => visit(counter),
        });
    }
}

/// Definition 1: the minimum worst-case throughput
/// `min_{x,y,S} |𝒯(x,y,S)| / L` over all `x ≠ y` and `|S| = D−1`,
/// computed exhaustively (parallel over the transmitter, incremental
/// subset engine inside).
///
/// The schedule is topology-transparent for `N_n^D` iff this is `> 0`.
pub fn min_throughput(s: &Schedule, d: usize) -> f64 {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d, "need at least D+1 nodes for a degree-D worst case");
    let l = s.frame_length();
    let min_count = (0..n)
        .into_par_iter()
        .map(|x| {
            let mut local = usize::MAX;
            let mut scratch = SweepScratch::new(n, l);
            for y in 0..n {
                if y == x {
                    continue;
                }
                scratch.prepare(s, x, y);
                scratch.sweep(d, |counter| {
                    local = local.min(counter.deficit());
                    local > 0 // a zero cannot be beaten; stop early
                });
                if local == 0 {
                    break;
                }
            }
            local
        })
        .min()
        .unwrap_or(0);
    min_count as f64 / l as f64
}

/// Reference implementation of [`min_throughput`]: the pre-engine scan
/// that rebuilds every `𝒯(x, y, S)` from scratch. Kept as the equivalence
/// baseline for proptests and `bench_verify`.
pub fn min_throughput_naive(s: &Schedule, d: usize) -> f64 {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d, "need at least D+1 nodes for a degree-D worst case");
    let l = s.frame_length();
    let min_count = (0..n)
        .into_par_iter()
        .map(|x| {
            let mut local = usize::MAX;
            let mut scratch = BitSet::new(l);
            for y in 0..n {
                if y == x {
                    continue;
                }
                let pool: Vec<usize> = (0..n).filter(|&v| v != x && v != y).collect();
                for_each_subset_of(&pool, d - 1, |others| {
                    scratch.clear();
                    scratch.union_with(s.recv(y));
                    scratch.intersect_with(s.tran(x));
                    scratch.difference_with(s.tran(y));
                    for &z in others {
                        scratch.difference_with(s.tran(z));
                    }
                    local = local.min(scratch.len());
                    local > 0 // a zero cannot be beaten; stop early
                });
                if local == 0 {
                    break;
                }
            }
            local
        })
        .min()
        .unwrap_or(0);
    min_count as f64 / l as f64
}

/// Definition 2 computed by brute force: enumerates every `(x, y, S)` and
/// sums `|𝒯(x, y, S)|` into `F`, then normalises. Exponential in `D`;
/// the ground truth that [`average_throughput`] is validated against.
/// The exact-integer accumulation makes the enumeration order irrelevant,
/// so the incremental engine returns the bit-identical f64.
pub fn average_throughput_bruteforce(s: &Schedule, d: usize) -> f64 {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d);
    let l = s.frame_length();
    let f: u128 = (0..n)
        .into_par_iter()
        .map(|x| {
            let mut acc: u128 = 0;
            let mut scratch = SweepScratch::new(n, l);
            for y in 0..n {
                if y == x {
                    continue;
                }
                scratch.prepare(s, x, y);
                scratch.sweep(d, |counter| {
                    acc += counter.deficit() as u128;
                    true
                });
            }
            acc
        })
        .sum();
    let denom = n as f64
        * (n - 1) as f64
        * ttdc_util::binomial_f64((n - 2) as u64, (d - 1) as u64)
        * l as f64;
    f as f64 / denom
}

/// Reference implementation of [`average_throughput_bruteforce`] — the
/// pre-engine from-scratch scan, kept as the equivalence baseline.
pub fn average_throughput_bruteforce_naive(s: &Schedule, d: usize) -> f64 {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d);
    let l = s.frame_length();
    let f: u128 = (0..n)
        .into_par_iter()
        .map(|x| {
            let mut acc: u128 = 0;
            let mut scratch = BitSet::new(l);
            for y in 0..n {
                if y == x {
                    continue;
                }
                let pool: Vec<usize> = (0..n).filter(|&v| v != x && v != y).collect();
                for_each_subset_of(&pool, d - 1, |others| {
                    scratch.clear();
                    scratch.union_with(s.recv(y));
                    scratch.intersect_with(s.tran(x));
                    scratch.difference_with(s.tran(y));
                    for &z in others {
                        scratch.difference_with(s.tran(z));
                    }
                    acc += scratch.len() as u128;
                    true
                });
            }
            acc
        })
        .sum();
    let denom = n as f64
        * (n - 1) as f64
        * ttdc_util::binomial_f64((n - 2) as u64, (d - 1) as u64)
        * l as f64;
    f as f64 / denom
}

/// Theorem 2: the average worst-case throughput in closed form,
///
/// ```text
///            Σ_i |T[i]| · |R[i]| · C(n−|T[i]|−1, D−1)
/// Thr_ave = ───────────────────────────────────────────
///                  n (n−1) C(n−2, D−1) L
/// ```
///
/// It depends only on the per-slot counts, not on *which* nodes are
/// scheduled — the observation driving the whole of §5.
pub fn average_throughput(s: &Schedule, d: usize) -> f64 {
    assert!(d >= 1);
    let n = s.num_nodes();
    assert!(n > d);
    let l = s.frame_length();
    // Every slot needs C(n−t−1, D−1)/C(n−2, D−1) for its own t; memoize the
    // whole family once instead of re-deriving the factor product per slot.
    let ratios = BinomialTable::new((n - 2) as u64, (d - 1) as u64);
    let sum: f64 = (0..l)
        .map(|i| {
            let t = s.transmitters(i).len();
            let r = s.receivers(i).len();
            if t == 0 || r == 0 || n < t + 1 {
                return 0.0;
            }
            // |T[i]|·|R[i]| · C(n−t−1, D−1)/C(n−2, D−1)
            t as f64 * r as f64 * ratios.ratio((n - t - 1) as u64)
        })
        .sum();
    sum / (n as f64 * (n - 1) as f64 * l as f64)
}

/// Average throughput from per-slot counts alone — the form used by the
/// bound sweeps (no schedule object required).
pub fn average_throughput_from_counts(n: usize, d: usize, counts: &[(usize, usize)]) -> f64 {
    assert!(d >= 1 && n > d);
    let l = counts.len();
    let ratios = BinomialTable::new((n - 2) as u64, (d - 1) as u64);
    let sum: f64 = counts
        .iter()
        .map(|&(t, r)| {
            if t == 0 || r == 0 || n < t + 1 {
                return 0.0;
            }
            t as f64 * r as f64 * ratios.ratio((n - t - 1) as u64)
        })
        .sum();
    sum / (n as f64 * (n - 1) as f64 * l as f64)
}

/// Per-link guaranteed successes on a **fixed topology** (the Figure-1
/// setting): for each directed edge `(x, y)` of the adjacency structure,
/// the number of slots per frame in which `x → y` is guaranteed, i.e.
/// `|recv(y) ∩ freeSlots(x, N(y) ∪ {y} − {x})|`.
///
/// `adjacency[v]` is the neighbour set of `v` (universe `n`, symmetric).
pub fn topology_link_throughput(s: &Schedule, adjacency: &[BitSet]) -> Vec<(usize, usize, usize)> {
    let n = s.num_nodes();
    assert_eq!(adjacency.len(), n, "adjacency size mismatch");
    let mut out = Vec::new();
    let mut scratch = BitSet::new(s.frame_length());
    for (y, nbrs) in adjacency.iter().enumerate() {
        for x in nbrs {
            // Guaranteed slots for x → y with y's actual neighbourhood.
            scratch.clear();
            scratch.union_with(s.recv(y));
            scratch.intersect_with(s.tran(x));
            scratch.difference_with(s.tran(y));
            for z in nbrs {
                if z != x {
                    scratch.difference_with(s.tran(z));
                }
            }
            out.push((x, y, scratch.len()));
        }
    }
    out
}

/// Aggregate of [`topology_link_throughput`]: `(min, mean)` guaranteed
/// successes per frame over all directed links.
pub fn topology_throughput_summary(s: &Schedule, adjacency: &[BitSet]) -> (usize, f64) {
    let links = topology_link_throughput(s, adjacency);
    if links.is_empty() {
        return (0, 0.0);
    }
    let min = links.iter().map(|&(_, _, c)| c).min().unwrap();
    let mean = links.iter().map(|&(_, _, c)| c as f64).sum::<f64>() / links.len() as f64;
    (min, mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttdc_combinatorics::CoverFreeFamily;

    fn identity_schedule(n: usize) -> Schedule {
        Schedule::from_cff(&CoverFreeFamily::identity(n))
    }

    fn polynomial_schedule(q: usize, k: u32, n: u64) -> Schedule {
        let gf = ttdc_combinatorics::Gf::new(q).unwrap();
        Schedule::from_cff(&CoverFreeFamily::from_polynomials(&gf, k, n))
    }

    #[test]
    fn guaranteed_slots_identity() {
        let s = identity_schedule(5);
        // x=0 → y=1 with others {2,3}: slot 0 is free and 1 listens there.
        let t = guaranteed_slots(&s, 0, 1, &[2, 3]);
        assert_eq!(t, BitSet::from_iter(5, [0]));
    }

    #[test]
    fn identity_min_throughput_is_one_over_n() {
        for n in [4usize, 6, 8] {
            let s = identity_schedule(n);
            for d in 1..=3 {
                let thr = min_throughput(&s, d);
                assert!((thr - 1.0 / n as f64).abs() < 1e-12, "n={n} d={d}: {thr}");
            }
        }
    }

    #[test]
    fn theorem2_matches_bruteforce_identity() {
        for n in [4usize, 5, 6, 7] {
            for d in 1..=3 {
                if n < d + 1 {
                    continue;
                }
                let s = identity_schedule(n);
                let closed = average_throughput(&s, d);
                let brute = average_throughput_bruteforce(&s, d);
                assert!(
                    (closed - brute).abs() < 1e-12,
                    "n={n} d={d}: closed {closed} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn theorem2_matches_bruteforce_polynomial() {
        for (q, k, n) in [(3usize, 1u32, 9u64), (4, 1, 12), (5, 1, 25)] {
            let s = polynomial_schedule(q, k, n);
            for d in 1..=3 {
                let closed = average_throughput(&s, d);
                let brute = average_throughput_bruteforce(&s, d);
                assert!(
                    (closed - brute).abs() < 1e-12,
                    "q={q} n={n} d={d}: {closed} vs {brute}"
                );
            }
        }
    }

    #[test]
    fn theorem2_matches_bruteforce_duty_cycled() {
        // A hand-built sleeping schedule: 4 nodes, 3 slots.
        let t = vec![
            BitSet::from_iter(4, [0, 1]),
            BitSet::from_iter(4, [2]),
            BitSet::from_iter(4, [3]),
        ];
        let r = vec![
            BitSet::from_iter(4, [2, 3]),
            BitSet::from_iter(4, [0]),
            BitSet::from_iter(4, [1, 2]),
        ];
        let s = Schedule::new(4, t, r);
        for d in 1..=2 {
            let closed = average_throughput(&s, d);
            let brute = average_throughput_bruteforce(&s, d);
            assert!((closed - brute).abs() < 1e-12, "d={d}: {closed} vs {brute}");
        }
    }

    #[test]
    fn counts_form_agrees_with_schedule_form() {
        let s = polynomial_schedule(3, 1, 9);
        let counts: Vec<(usize, usize)> = (0..s.frame_length())
            .map(|i| (s.transmitters(i).len(), s.receivers(i).len()))
            .collect();
        for d in 1..=3 {
            assert!(
                (average_throughput(&s, d) - average_throughput_from_counts(9, d, &counts)).abs()
                    < 1e-15
            );
        }
    }

    #[test]
    fn incremental_sweeps_match_naive_to_the_bit() {
        for (q, k, n) in [(3usize, 1u32, 9u64), (4, 1, 12)] {
            let s = polynomial_schedule(q, k, n);
            for d in 1..=3 {
                assert_eq!(
                    min_throughput(&s, d).to_bits(),
                    min_throughput_naive(&s, d).to_bits(),
                    "min q={q} n={n} d={d}"
                );
                assert_eq!(
                    average_throughput_bruteforce(&s, d).to_bits(),
                    average_throughput_bruteforce_naive(&s, d).to_bits(),
                    "avg q={q} n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn min_throughput_zero_iff_not_transparent() {
        let s = polynomial_schedule(3, 1, 9);
        assert!(min_throughput(&s, 2) > 0.0);
        assert_eq!(min_throughput(&s, 3), 0.0);
        assert!(!crate::requirements::is_topology_transparent(&s, 3));
    }

    #[test]
    fn average_throughput_invariant_under_node_relabeling() {
        // Theorem 2 says only the counts matter: swapping which nodes
        // occupy T[i] leaves the average unchanged.
        let t1 = vec![BitSet::from_iter(5, [0, 1]), BitSet::from_iter(5, [2, 3])];
        let t2 = vec![BitSet::from_iter(5, [3, 4]), BitSet::from_iter(5, [0, 4])];
        let s1 = Schedule::non_sleeping(5, t1);
        let s2 = Schedule::non_sleeping(5, t2);
        for d in 1..=3 {
            assert!((average_throughput(&s1, d) - average_throughput(&s2, d)).abs() < 1e-15);
        }
    }

    #[test]
    fn fixed_topology_throughput_identity_ring() {
        // Ring 0-1-2-3 under the identity schedule: every directed link has
        // exactly 1 guaranteed slot per frame (the transmitter's own slot).
        let s = identity_schedule(4);
        let adj: Vec<BitSet> = (0..4)
            .map(|v| BitSet::from_iter(4, [(v + 1) % 4, (v + 3) % 4]))
            .collect();
        let links = topology_link_throughput(&s, &adj);
        assert_eq!(links.len(), 8, "4 undirected edges = 8 directed links");
        assert!(links.iter().all(|&(_, _, c)| c == 1));
        let (min, mean) = topology_throughput_summary(&s, &adj);
        assert_eq!(min, 1);
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_topology_empty_graph() {
        let s = identity_schedule(3);
        let adj = vec![BitSet::new(3), BitSet::new(3), BitSet::new(3)];
        assert!(topology_link_throughput(&s, &adj).is_empty());
        assert_eq!(topology_throughput_summary(&s, &adj), (0, 0.0));
    }
}
