//! Schedule serialization.
//!
//! A schedule is a deployment artefact: it is computed once (offline, from
//! `(n, D, α_T, α_R)`) and then flashed onto motes or shipped to a gateway.
//! This module defines a small line-oriented text format for that hand-off
//! and a strict parser for it:
//!
//! ```text
//! ttdc-schedule v1
//! n=6 L=2
//! T=0,1 R=4
//! T=2 R=3,5
//! ```
//!
//! One line per slot; node ids are comma-separated, `R=` may be empty.
//! Lines whose first non-blank character is `#` are comments and are
//! ignored anywhere in the file — the best-known-schedule catalog uses a
//! leading block of them as a provenance header (see
//! [`crate::synth::catalog`]).

use crate::schedule::Schedule;
use ttdc_util::BitSet;

/// Serializes a schedule into the v1 text format.
pub fn to_text(s: &Schedule) -> String {
    let mut out = String::new();
    out.push_str("ttdc-schedule v1\n");
    out.push_str(&format!("n={} L={}\n", s.num_nodes(), s.frame_length()));
    for i in 0..s.frame_length() {
        let fmt = |set: &BitSet| {
            set.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "T={} R={}\n",
            fmt(s.transmitters(i)),
            fmt(s.receivers(i))
        ));
    }
    out
}

/// A parse failure with the line it happened on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_set(field: &str, n: usize, line: usize) -> Result<BitSet, ParseError> {
    let mut set = BitSet::new(n);
    if field.is_empty() {
        return Ok(set);
    }
    for tok in field.split(',') {
        let v: usize = tok
            .parse()
            .map_err(|_| err(line, format!("bad node id {tok:?}")))?;
        if v >= n {
            return Err(err(line, format!("node id {v} ≥ n = {n}")));
        }
        if !set.insert(v) {
            return Err(err(line, format!("duplicate node id {v}")));
        }
    }
    Ok(set)
}

/// Parses the v1 text format back into a [`Schedule`]. `#`-comment lines
/// (catalog provenance headers) are skipped wherever they appear.
pub fn from_text(text: &str) -> Result<Schedule, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, line)| !line.trim_start().starts_with('#'));
    let (hidx, header) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    if header.trim() != "ttdc-schedule v1" {
        return Err(err(hidx + 1, format!("bad header {header:?}")));
    }
    let (midx, meta) = lines
        .next()
        .ok_or_else(|| err(hidx + 2, "missing n/L line"))?;
    let mline = midx + 1;
    let mut n = None;
    let mut l = None;
    for part in meta.split_whitespace() {
        if let Some(v) = part.strip_prefix("n=") {
            n = v.parse::<usize>().ok();
        } else if let Some(v) = part.strip_prefix("L=") {
            l = v.parse::<usize>().ok();
        } else {
            return Err(err(mline, format!("unexpected token {part:?}")));
        }
    }
    let n = n.ok_or_else(|| err(mline, "missing n="))?;
    let l = l.ok_or_else(|| err(mline, "missing L="))?;
    if l == 0 {
        return Err(err(mline, "L must be positive"));
    }
    let mut t = Vec::with_capacity(l);
    let mut r = Vec::with_capacity(l);
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("T=")
            .ok_or_else(|| err(lineno, "expected T="))?;
        let (tf, rf) = rest
            .split_once(" R=")
            .ok_or_else(|| err(lineno, "expected R= field"))?;
        let tset = parse_set(tf.trim(), n, lineno)?;
        let rset = parse_set(rf.trim(), n, lineno)?;
        if !tset.is_disjoint(&rset) {
            return Err(err(lineno, "T and R overlap"));
        }
        t.push(tset);
        r.push(rset);
    }
    if t.len() != l {
        return Err(err(
            mline,
            format!("declared L={l} but found {} slot lines", t.len()),
        ));
    }
    Ok(Schedule::new(n, t, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, PartitionStrategy};
    use crate::tsma::build_polynomial;

    #[test]
    fn round_trip_identity() {
        let s = crate::tsma::build_identity(5).schedule;
        let text = to_text(&s);
        let back = from_text(&text).unwrap();
        assert_eq!(s, back);
        assert!(text.starts_with("ttdc-schedule v1\nn=5 L=5\n"));
    }

    #[test]
    fn round_trip_constructed_schedule() {
        let ns = build_polynomial(12, 2).schedule;
        let c = construct(&ns, 2, 2, 3, PartitionStrategy::RoundRobin);
        let back = from_text(&to_text(&c.schedule)).unwrap();
        assert_eq!(c.schedule, back);
    }

    #[test]
    fn empty_receiver_sets_round_trip() {
        let t = vec![BitSet::from_iter(3, [0])];
        let r = vec![BitSet::new(3)];
        let s = Schedule::new(3, t, r);
        let back = from_text(&to_text(&s)).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn parse_errors_are_located() {
        assert_eq!(from_text("").unwrap_err().line, 1);
        assert_eq!(from_text("nope").unwrap_err().line, 1);
        assert_eq!(from_text("ttdc-schedule v1").unwrap_err().line, 2);
        assert_eq!(from_text("ttdc-schedule v1\nn=3").unwrap_err().line, 2);
        assert_eq!(from_text("ttdc-schedule v1\nn=3 L=0").unwrap_err().line, 2);
        let e = from_text("ttdc-schedule v1\nn=3 L=1\nT=0 R=9").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("≥ n"));
        let e = from_text("ttdc-schedule v1\nn=3 L=1\nT=0 R=0").unwrap_err();
        assert!(e.message.contains("overlap"));
        let e = from_text("ttdc-schedule v1\nn=3 L=1\nT=0,0 R=1").unwrap_err();
        assert!(e.message.contains("duplicate"));
        let e = from_text("ttdc-schedule v1\nn=3 L=2\nT=0 R=1").unwrap_err();
        assert!(e.message.contains("found 1 slot lines"));
        let e = from_text("ttdc-schedule v1\nn=3 L=1\nT=x R=1").unwrap_err();
        assert!(e.message.contains("bad node id"));
        let e = from_text("ttdc-schedule v1\nn=3 L=1\nR=1").unwrap_err();
        assert!(e.message.contains("expected T="));
        let e = from_text("ttdc-schedule v1\nn=3 bogus=1").unwrap_err();
        assert!(e.message.contains("unexpected token"));
        assert_eq!(format!("{e}"), format!("line 2: {}", e.message));
    }

    #[test]
    fn blank_lines_tolerated() {
        let s = from_text("ttdc-schedule v1\nn=2 L=1\n\nT=0 R=1\n\n").unwrap();
        assert_eq!(s.frame_length(), 1);
    }

    #[test]
    fn comment_lines_ignored_everywhere() {
        let s = from_text(
            "# catalog provenance\n# n=2 D=1\nttdc-schedule v1\nn=2 L=1\n# mid\nT=0 R=1\n# end\n",
        )
        .unwrap();
        assert_eq!(s.frame_length(), 1);
        // Errors still point at the true line numbers with comments present.
        let e = from_text("# one\nttdc-schedule v1\nn=3 L=1\nT=0 R=9").unwrap_err();
        assert_eq!(e.line, 4);
        let e = from_text("# one\n# two\nbad header").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
