//! Performance analysis of the construction (§7, Theorems 7–9).
//!
//! * **Theorem 7** — the exact frame length of the constructed schedule and
//!   its closed upper bound.
//! * **Theorem 8** — a lower bound on the ratio of the constructed
//!   schedule's average throughput to the Theorem-4 optimum, via the
//!   function `r(x)`; equality (`ratio = 1`) whenever the source schedule
//!   has `|T[i]| ≥ α_T*` in every slot.
//! * **Theorem 9** — a lower bound on the constructed schedule's minimum
//!   throughput in terms of the source schedule's.

use crate::bounds::alpha_bound;
use crate::schedule::Schedule;
use crate::throughput::average_throughput;

/// Theorem 7 (exact): `L̄ = Σ_i ⌈|T[i]|/α_T*⌉ · ⌈(n−|T[i]|)/α_R⌉`.
pub fn constructed_frame_length(
    t_sizes: &[usize],
    n: usize,
    alpha_t_star: usize,
    alpha_r: usize,
) -> usize {
    assert!(alpha_t_star >= 1 && alpha_r >= 1);
    t_sizes
        .iter()
        .map(|&ti| {
            assert!(ti <= n);
            ti.div_ceil(alpha_t_star) * (n - ti).div_ceil(alpha_r)
        })
        .sum()
}

/// Theorem 7 (bound): `L̄ ≤ ⌈M_ax/α_T*⌉ · ⌈(n−M_in)/α_R⌉ · L`.
pub fn frame_length_upper_bound(
    t_sizes: &[usize],
    n: usize,
    alpha_t_star: usize,
    alpha_r: usize,
) -> usize {
    let max = t_sizes.iter().copied().max().unwrap_or(0);
    let min = t_sizes.iter().copied().min().unwrap_or(0);
    max.div_ceil(alpha_t_star) * (n - min).div_ceil(alpha_r) * t_sizes.len()
}

/// The optimality weight `r(x) = (x/α_T*) · ∏_{i=1}^{D−1} (n−i−x)/(n−i−α_T*)`
/// of §7: the ratio of the per-slot throughput contribution of a slot with
/// `x` transmitters (and `α_R` receivers) to that of an optimal slot.
/// `r(α_T*) = 1`.
pub fn r_ratio(n: usize, d: usize, alpha_t_star: usize, x: usize) -> f64 {
    assert!(d >= 1 && d < n && alpha_t_star >= 1);
    let mut acc = x as f64 / alpha_t_star as f64;
    for i in 1..d {
        let denom = n as isize - i as isize - alpha_t_star as isize;
        assert!(denom > 0, "α_T* too large for r(x) to be defined");
        acc *= (n as f64 - i as f64 - x as f64) / denom as f64;
    }
    acc
}

/// The Theorem-8 lower bound on `Thr_ave(⟨T̄,R̄⟩) / Thr*_{α_R,α_T}` computed
/// from the **source** schedule's per-slot transmitter counts:
///
/// ```text
///   ≥ (r(M_in)·|A_1| + c·|A_2|) / (|A_1| + c·|A_2|)
/// ```
///
/// with `A_1 = {i : |T[i]| < α_T*}`, `A_2 = {i : |T[i]| ≥ α_T*}` and
/// `c = (⌈n/α_m⌉ − 1) / ⌈(n−M_in)/α_R⌉`, `α_m = max{α_T*, α_R}`.
pub fn theorem8_lower_bound(
    t_sizes: &[usize],
    n: usize,
    d: usize,
    alpha_t_star: usize,
    alpha_r: usize,
) -> f64 {
    assert!(!t_sizes.is_empty());
    let min = *t_sizes.iter().min().unwrap();
    let a1 = t_sizes.iter().filter(|&&t| t < alpha_t_star).count();
    let a2 = t_sizes.len() - a1;
    if a1 == 0 {
        return 1.0;
    }
    let alpha_m = alpha_t_star.max(alpha_r);
    let c = (n.div_ceil(alpha_m) - 1) as f64 / (n - min).div_ceil(alpha_r) as f64;
    let r_min = r_ratio(n, d, alpha_t_star, min);
    (r_min * a1 as f64 + c * a2 as f64) / (a1 as f64 + c * a2 as f64)
}

/// The *measured* optimality ratio `Thr_ave(constructed) / Thr*_{α_R,α_T}`
/// (Theorem 2 over Theorem 4). Theorem 8 lower-bounds this.
pub fn optimality_ratio(constructed: &Schedule, d: usize, alpha_t: usize, alpha_r: usize) -> f64 {
    let n = constructed.num_nodes();
    let bound = alpha_bound(n, d, alpha_t, alpha_r);
    average_throughput(constructed, d) / bound.thr_star
}

/// The §7 identity: when every constructed slot has exactly `α_R` receivers,
/// `Thr_ave/Thr* = (1/L̄)·Σ_i r(|T̄[i]|)`. Used to cross-check
/// [`optimality_ratio`] in tests and experiment E7.
pub fn optimality_ratio_via_r(constructed: &Schedule, d: usize, alpha_t_star: usize) -> f64 {
    let n = constructed.num_nodes();
    let l = constructed.frame_length();
    let sum: f64 = (0..l)
        .map(|i| r_ratio(n, d, alpha_t_star, constructed.transmitters(i).len()))
        .sum();
    sum / l as f64
}

/// Theorem 9 (tight form): `Thr_min(⟨T̄,R̄⟩) ≥ (L/L̄) · Thr_min(⟨T⟩)`.
pub fn theorem9_bound(thr_min_source: f64, l_source: usize, l_constructed: usize) -> f64 {
    thr_min_source * l_source as f64 / l_constructed as f64
}

/// Theorem 9 (loose form):
/// `Thr_min(⟨T̄,R̄⟩) ≥ Thr_min(⟨T⟩) / (⌈M_ax/α_T*⌉·⌈(n−M_in)/α_R⌉)`.
pub fn theorem9_loose_bound(
    thr_min_source: f64,
    t_sizes: &[usize],
    n: usize,
    alpha_t_star: usize,
    alpha_r: usize,
) -> f64 {
    let max = t_sizes.iter().copied().max().unwrap_or(0);
    let min = t_sizes.iter().copied().min().unwrap_or(0);
    thr_min_source / (max.div_ceil(alpha_t_star) * (n - min).div_ceil(alpha_r)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{construct, construct_exact, PartitionStrategy};
    use crate::throughput::min_throughput;
    use ttdc_combinatorics::CoverFreeFamily;

    fn polynomial_schedule(q: usize, k: u32, n: u64) -> Schedule {
        let gf = ttdc_combinatorics::Gf::new(q).unwrap();
        Schedule::from_cff(&CoverFreeFamily::from_polynomials(&gf, k, n))
    }

    #[test]
    fn frame_length_exact_vs_constructed() {
        for (q, n, at, ar) in [(5usize, 25u64, 2usize, 3usize), (4, 13, 1, 2), (3, 9, 2, 4)] {
            let ns = polynomial_schedule(q, 1, n);
            let c = construct_exact(&ns, at, ar, PartitionStrategy::Contiguous);
            let exact = constructed_frame_length(&ns.t_sizes(), n as usize, at, ar);
            assert_eq!(c.schedule.frame_length(), exact, "q={q} at={at} ar={ar}");
            let bound = frame_length_upper_bound(&ns.t_sizes(), n as usize, at, ar);
            assert!(exact <= bound);
        }
    }

    #[test]
    fn frame_length_bound_tight_for_uniform_sizes() {
        // Full polynomial schedule: |T[i]| = q^k in every slot, so the
        // bound is exact.
        let ns = polynomial_schedule(5, 1, 25);
        let exact = constructed_frame_length(&ns.t_sizes(), 25, 2, 3);
        let bound = frame_length_upper_bound(&ns.t_sizes(), 25, 2, 3);
        assert_eq!(exact, bound);
    }

    #[test]
    fn r_is_one_at_alpha_star_and_monotone_below() {
        let (n, d, a) = (25usize, 3usize, 4usize);
        assert!((r_ratio(n, d, a, a) - 1.0).abs() < 1e-12);
        let mut last = 0.0;
        for x in 0..=a {
            let v = r_ratio(n, d, a, x);
            assert!(v >= last - 1e-12, "r should grow up to α_T* ({x})");
            last = v;
        }
        assert_eq!(r_ratio(n, d, a, 0), 0.0);
    }

    #[test]
    fn theorem8_equality_when_min_at_least_alpha_star() {
        // q = 5 full schedule: |T[i]| = 5 ≥ α_T* when α_T ≤ 5.
        let ns = polynomial_schedule(5, 1, 25);
        let (d, at, ar) = (2usize, 3usize, 4usize);
        let c = construct(&ns, d, at, ar, PartitionStrategy::RoundRobin);
        assert!(c.alpha_t_star <= 5);
        let bound = theorem8_lower_bound(&ns.t_sizes(), 25, d, c.alpha_t_star, ar);
        assert_eq!(bound, 1.0);
        let measured = optimality_ratio(&c.schedule, d, at, ar);
        assert!(
            (measured - 1.0).abs() < 1e-9,
            "optimal construction must hit the Theorem-4 bound, got {measured}"
        );
    }

    #[test]
    fn theorem8_bound_below_measured_for_thin_schedules() {
        // Truncated polynomial schedule: some slots have < α_T*
        // transmitters, so the ratio drops below 1 but stays above the
        // Theorem-8 bound.
        let ns = polynomial_schedule(5, 1, 12); // 12 of 25 polynomials
        let (d, at, ar) = (2usize, 4usize, 5usize);
        let c = construct(&ns, d, at, ar, PartitionStrategy::RoundRobin);
        let measured = optimality_ratio(&c.schedule, d, at, ar);
        let bound = theorem8_lower_bound(&ns.t_sizes(), 12, d, c.alpha_t_star, ar);
        assert!(measured <= 1.0 + 1e-9);
        assert!(
            measured >= bound - 1e-9,
            "measured {measured} below Theorem-8 bound {bound}"
        );
    }

    #[test]
    fn optimality_ratio_identity_via_r() {
        let ns = polynomial_schedule(5, 1, 18);
        let (d, at, ar) = (2usize, 3usize, 4usize);
        let c = construct(&ns, d, at, ar, PartitionStrategy::Contiguous);
        let direct = optimality_ratio(&c.schedule, d, at, ar);
        let via_r = optimality_ratio_via_r(&c.schedule, d, c.alpha_t_star);
        assert!(
            (direct - via_r).abs() < 1e-9,
            "identity broken: {direct} vs {via_r}"
        );
    }

    #[test]
    fn theorem9_bounds_hold() {
        let ns = polynomial_schedule(4, 1, 16);
        let d = 3usize;
        let thr_min_src = min_throughput(&ns, d);
        assert!(thr_min_src > 0.0);
        let c = construct(&ns, d, 2, 4, PartitionStrategy::RoundRobin);
        let measured = min_throughput(&c.schedule, d);
        let tight = theorem9_bound(thr_min_src, ns.frame_length(), c.schedule.frame_length());
        let loose = theorem9_loose_bound(thr_min_src, &ns.t_sizes(), 16, c.alpha_t_star, 4);
        assert!(measured >= tight - 1e-12, "{measured} < tight {tight}");
        assert!(tight >= loose - 1e-12, "tight {tight} < loose {loose}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn r_rejects_oversized_alpha() {
        // n − (D−1) − α_T* must stay positive.
        r_ratio(6, 3, 4, 2);
    }
}
