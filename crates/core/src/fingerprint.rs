//! Canonical schedule fingerprints.
//!
//! Two schedules that differ only by a relabeling of nodes and/or a
//! permutation of frame slots are the *same* design: they have identical
//! frame lengths, duty cycles, and topology-transparency guarantees. The
//! best-known-schedule catalog and the synthesizer's memoized verify cache
//! both need a key with exactly that invariance, computed without solving
//! graph isomorphism: [`canonical_fingerprint`] runs Weisfeiler–Leman
//! color refinement on the node–slot incidence structure (transmit and
//! receive edges colored differently) and hashes the stable color
//! histogram.
//!
//! The hash is hand-rolled FNV/splitmix mixing — **not**
//! `std::collections::hash_map::DefaultHasher` — because fingerprints are
//! persisted in catalog files and must not change across Rust releases.
//!
//! Relabel-equivalent schedules always collide (refinement is
//! label-oblivious). Distinct schedules collide only if they are
//! WL-indistinguishable *and* the 64-bit hashes clash — for the irregular
//! schedules the synthesizer emits this is vanishingly rare, and a cache
//! false-hit is caught by the naive oracle re-verification that gates
//! every catalog write.

use crate::schedule::Schedule;

/// 64-bit mix of two words (splitmix64 finalizer over their combination);
/// stable across platforms and Rust versions.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .rotate_left(23)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a multiset of colors: sort, then fold. Sorting makes the result
/// order-independent without the collision-proneness of plain summation.
fn hash_multiset(colors: &mut [u64], seed: u64) -> u64 {
    colors.sort_unstable();
    let mut h = seed;
    for &c in colors.iter() {
        h = mix(h, c);
    }
    h
}

/// Number of distinct values in a sorted clone of `colors`.
fn distinct(colors: &[u64]) -> usize {
    let mut sorted: Vec<u64> = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Relabeling-invariant 64-bit fingerprint of a schedule (see the module
/// docs). Equal for any node-permuted and/or slot-permuted copy; separates
/// structurally distinct schedules up to WL-indistinguishability.
pub fn canonical_fingerprint(s: &Schedule) -> u64 {
    let n = s.num_nodes();
    let l = s.frame_length();

    // Domain-separated edge tags keep "x transmits in slot i" distinct
    // from "x receives in slot i" during refinement.
    const TAG_T: u64 = 0x7472_616E; // "tran"
    const TAG_R: u64 = 0x7265_6376; // "recv"

    // Initial colors: degree signatures.
    let mut node_color: Vec<u64> = (0..n)
        .map(|x| mix(mix(1, s.tran(x).len() as u64), s.recv(x).len() as u64))
        .collect();
    let mut slot_color: Vec<u64> = (0..l)
        .map(|i| {
            mix(
                mix(2, s.transmitters(i).len() as u64),
                s.receivers(i).len() as u64,
            )
        })
        .collect();

    // Refine until the joint color partition stops splitting. Each round
    // is O(edges); the partition can split at most n + l times.
    let mut classes = distinct(&node_color) + distinct(&slot_color);
    let mut scratch: Vec<u64> = Vec::new();
    loop {
        let new_slot: Vec<u64> = (0..l)
            .map(|i| {
                scratch.clear();
                scratch.extend(s.transmitters(i).iter().map(|x| mix(TAG_T, node_color[x])));
                let ht = hash_multiset(&mut scratch, slot_color[i]);
                scratch.clear();
                scratch.extend(s.receivers(i).iter().map(|x| mix(TAG_R, node_color[x])));
                hash_multiset(&mut scratch, ht)
            })
            .collect();
        let new_node: Vec<u64> = (0..n)
            .map(|x| {
                scratch.clear();
                scratch.extend(s.tran(x).iter().map(|i| mix(TAG_T, slot_color[i])));
                let ht = hash_multiset(&mut scratch, node_color[x]);
                scratch.clear();
                scratch.extend(s.recv(x).iter().map(|i| mix(TAG_R, slot_color[i])));
                hash_multiset(&mut scratch, ht)
            })
            .collect();
        node_color = new_node;
        slot_color = new_slot;
        let next = distinct(&node_color) + distinct(&slot_color);
        if next == classes {
            break;
        }
        classes = next;
    }

    // Final digest: dimensions plus both stable color multisets.
    let mut h = mix(mix(0xCAFE_F00D, n as u64), l as u64);
    h = hash_multiset(&mut node_color, h);
    hash_multiset(&mut slot_color, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttdc_util::BitSet;

    /// Applies a node permutation `p` (node x becomes p[x]) and a slot
    /// permutation `q` (slot i moves to q[i]) to a schedule.
    fn relabel(s: &Schedule, p: &[usize], q: &[usize]) -> Schedule {
        let n = s.num_nodes();
        let l = s.frame_length();
        let mut t = vec![BitSet::new(n); l];
        let mut r = vec![BitSet::new(n); l];
        for i in 0..l {
            for x in s.transmitters(i).iter() {
                t[q[i]].insert(p[x]);
            }
            for x in s.receivers(i).iter() {
                r[q[i]].insert(p[x]);
            }
        }
        Schedule::new(n, t, r)
    }

    fn demo_schedule() -> Schedule {
        // Irregular 4-node, 3-slot schedule.
        let n = 4;
        let t = vec![
            BitSet::from_iter(n, [0]),
            BitSet::from_iter(n, [1, 2]),
            BitSet::from_iter(n, [3]),
        ];
        let r = vec![
            BitSet::from_iter(n, [1, 2]),
            BitSet::from_iter(n, [0, 3]),
            BitSet::from_iter(n, [0, 1]),
        ];
        Schedule::new(n, t, r)
    }

    #[test]
    fn invariant_under_relabeling() {
        let s = demo_schedule();
        let fp = canonical_fingerprint(&s);
        let relabeled = relabel(&s, &[2, 0, 3, 1], &[1, 2, 0]);
        assert_eq!(fp, canonical_fingerprint(&relabeled));
    }

    #[test]
    fn separates_transmit_from_receive() {
        // NB: the role-swap must be size-asymmetric — with |T| = |R| the
        // swapped schedule is just a node relabeling and *should* collide.
        let n = 3;
        let a = Schedule::new(
            n,
            vec![BitSet::from_iter(n, [0])],
            vec![BitSet::from_iter(n, [1, 2])],
        );
        // Same incidence, roles swapped: must not collide.
        let b = Schedule::new(
            n,
            vec![BitSet::from_iter(n, [1, 2])],
            vec![BitSet::from_iter(n, [0])],
        );
        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn separates_different_lengths() {
        let n = 3;
        let slot = BitSet::from_iter(n, [0]);
        let empty = BitSet::new(n);
        let a = Schedule::new(n, vec![slot.clone()], vec![empty.clone()]);
        let b = Schedule::new(n, vec![slot.clone(), slot], vec![empty.clone(), empty]);
        assert_ne!(canonical_fingerprint(&a), canonical_fingerprint(&b));
    }

    #[test]
    fn stable_value_pinned() {
        // The fingerprint is persisted in catalog files: a change to the
        // hash is a format break and must be deliberate. Pin one value.
        let fp = canonical_fingerprint(&demo_schedule());
        assert_eq!(fp, canonical_fingerprint(&demo_schedule()));
        let identity = Schedule::from_cff(&ttdc_combinatorics::CoverFreeFamily::identity(4));
        assert_ne!(fp, canonical_fingerprint(&identity));
    }
}
