//! The schedule model of §3 of the paper.
//!
//! A schedule of node activities is a pair `⟨T, R⟩` of equal-length arrays
//! of node sets: in slot `i (mod L)` the nodes of `T[i]` may transmit, the
//! nodes of `R[i]` may receive, and everyone else sleeps. `T[i]` and `R[i]`
//! are disjoint (a half-duplex radio cannot do both). A *non-sleeping*
//! schedule has `R[i] = V − T[i]` in every slot.
//!
//! [`Schedule`] stores both the per-slot view (`T[i]`, `R[i]` as node sets)
//! and the transposed per-node view (`tran(x)`, `recv(x)` as slot sets); the
//! paper's set algebra — `σ(a,b) = tran(a) ∩ recv(b)`, `freeSlots(x, Y) =
//! tran(x) − ∪_{y∈Y} tran(y)` — runs on the transposed view.

use crate::error::ScheduleError;
use ttdc_util::BitSet;

/// An immutable slot schedule `⟨T, R⟩` over node universe `V_n = [0, n)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    n: usize,
    /// `T[i]`: nodes eligible to transmit in slot `i`.
    t: Vec<BitSet>,
    /// `R[i]`: nodes eligible to receive in slot `i`.
    r: Vec<BitSet>,
    /// Transposed: `tran(x)` over slot universe `[0, L)`.
    tran: Vec<BitSet>,
    /// Transposed: `recv(x)` over slot universe `[0, L)`.
    recv: Vec<BitSet>,
}

impl Schedule {
    /// Builds a schedule from per-slot transmitter and receiver sets.
    ///
    /// # Panics
    /// If the arrays differ in length, a set has the wrong universe, or
    /// some `T[i]` and `R[i]` intersect. [`Schedule::try_new`] is the
    /// fallible equivalent.
    pub fn new(n: usize, t: Vec<BitSet>, r: Vec<BitSet>) -> Schedule {
        match Schedule::try_new(n, t, r) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a schedule from per-slot transmitter and receiver sets,
    /// rejecting malformed input as a typed [`ScheduleError`] instead of
    /// panicking.
    pub fn try_new(n: usize, t: Vec<BitSet>, r: Vec<BitSet>) -> Result<Schedule, ScheduleError> {
        if t.len() != r.len() {
            return Err(ScheduleError::LengthMismatch {
                t_len: t.len(),
                r_len: r.len(),
            });
        }
        if t.is_empty() {
            return Err(ScheduleError::EmptyFrame);
        }
        let l = t.len();
        for i in 0..l {
            for (array, set) in [("T", &t[i]), ("R", &r[i])] {
                if set.universe() != n {
                    return Err(ScheduleError::UniverseMismatch {
                        array,
                        slot: i,
                        found: set.universe(),
                        expected: n,
                    });
                }
            }
            if !t[i].is_disjoint(&r[i]) {
                return Err(ScheduleError::TransmitReceiveOverlap { slot: i });
            }
        }
        let mut tran = vec![BitSet::new(l); n];
        let mut recv = vec![BitSet::new(l); n];
        for i in 0..l {
            for x in &t[i] {
                tran[x].insert(i);
            }
            for x in &r[i] {
                recv[x].insert(i);
            }
        }
        Ok(Schedule {
            n,
            t,
            r,
            tran,
            recv,
        })
    }

    /// Builds the non-sleeping schedule `⟨T⟩`: `R[i] = V − T[i]`.
    pub fn non_sleeping(n: usize, t: Vec<BitSet>) -> Schedule {
        let r = t.iter().map(BitSet::complement).collect();
        Schedule::new(n, t, r)
    }

    /// Builds the non-sleeping schedule induced by a cover-free family:
    /// slot universe is the ground set, and `T[i] = { x : i ∈ block(x) }`.
    pub fn from_cff(cff: &ttdc_combinatorics::CoverFreeFamily) -> Schedule {
        let n = cff.len();
        let l = cff.ground_size();
        let mut t = vec![BitSet::new(n); l];
        for (x, block) in cff.blocks().iter().enumerate() {
            for i in block {
                t[i].insert(x);
            }
        }
        Schedule::non_sleeping(n, t)
    }

    /// Number of nodes `n = |V_n|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Frame length `L`.
    #[inline]
    pub fn frame_length(&self) -> usize {
        self.t.len()
    }

    /// `T[i]`.
    #[inline]
    pub fn transmitters(&self, slot: usize) -> &BitSet {
        &self.t[slot]
    }

    /// `R[i]`.
    #[inline]
    pub fn receivers(&self, slot: usize) -> &BitSet {
        &self.r[slot]
    }

    /// `tran(x)`: the slots in which `x` may transmit.
    #[inline]
    pub fn tran(&self, x: usize) -> &BitSet {
        &self.tran[x]
    }

    /// `recv(x)`: the slots in which `x` may receive.
    #[inline]
    pub fn recv(&self, x: usize) -> &BitSet {
        &self.recv[x]
    }

    /// `σ(a, b) = tran(a) ∩ recv(b)`: slots where `a` may transmit while
    /// `b` listens.
    pub fn sigma(&self, a: usize, b: usize) -> BitSet {
        self.tran[a].intersection(&self.recv[b])
    }

    /// `freeSlots(x, Y) = tran(x) − ∪_{y∈Y} tran(y)`: slots in which `x`
    /// is the only potential transmitter among `{x} ∪ Y`.
    pub fn free_slots(&self, x: usize, ys: &[usize]) -> BitSet {
        let mut out = self.tran[x].clone();
        for &y in ys {
            out.difference_with(&self.tran[y]);
        }
        out
    }

    /// `true` if every node is active (transmitting or receiving) in every
    /// slot — the paper's non-sleeping condition `T[i] ∪ R[i] = V`.
    pub fn is_non_sleeping(&self) -> bool {
        self.t
            .iter()
            .zip(&self.r)
            .all(|(t, r)| t.union(r).len() == self.n)
    }

    /// `true` if the schedule is an `(α_T, α_R)`-schedule:
    /// `|T[i]| ≤ α_T` and `|R[i]| ≤ α_R` in every slot.
    pub fn is_alpha_schedule(&self, alpha_t: usize, alpha_r: usize) -> bool {
        self.t.iter().all(|t| t.len() <= alpha_t) && self.r.iter().all(|r| r.len() <= alpha_r)
    }

    /// Per-slot transmitter counts `|T[i]|`.
    pub fn t_sizes(&self) -> Vec<usize> {
        self.t.iter().map(BitSet::len).collect()
    }

    /// Per-slot receiver counts `|R[i]|`.
    pub fn r_sizes(&self) -> Vec<usize> {
        self.r.iter().map(BitSet::len).collect()
    }

    /// `min` and `max` of `|T[i]|` over the frame — the paper's `M_in` and
    /// `M_ax` (Theorems 7–9).
    pub fn t_size_range(&self) -> (usize, usize) {
        let sizes = self.t_sizes();
        (
            sizes.iter().copied().min().unwrap_or(0),
            sizes.iter().copied().max().unwrap_or(0),
        )
    }

    /// Fraction of the frame node `x` is active (its duty cycle).
    pub fn duty_cycle(&self, x: usize) -> f64 {
        let active = self.tran[x].len() + self.recv[x].len();
        active as f64 / self.frame_length() as f64
    }

    /// Average duty cycle across all nodes — the energy proxy the paper's
    /// `(α_T, α_R)` constraint controls: it equals
    /// `Σ_i (|T[i]| + |R[i]|) / (nL) ≤ (α_T + α_R)/n`.
    pub fn average_duty_cycle(&self) -> f64 {
        (0..self.n).map(|x| self.duty_cycle(x)).sum::<f64>() / self.n as f64
    }

    /// Restriction of the schedule to its first `l` slots (used by tests
    /// and by schedule surgery in the experiments).
    pub fn truncated(&self, l: usize) -> Schedule {
        assert!(l >= 1 && l <= self.frame_length());
        Schedule::new(self.n, self.t[..l].to_vec(), self.r[..l].to_vec())
    }

    /// Relabeling-invariant 64-bit fingerprint: equal for any node- and/or
    /// slot-permuted copy of this schedule. Catalog key and synthesizer
    /// verify-cache key — see [`crate::fingerprint`] for the construction
    /// and its collision characteristics.
    pub fn canonical_fingerprint(&self) -> u64 {
        crate::fingerprint::canonical_fingerprint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttdc_combinatorics::CoverFreeFamily;

    /// 3 nodes, 3 slots, round-robin TDMA: T[i] = {i}, R[i] = V − {i}.
    fn rr3() -> Schedule {
        let t = (0..3).map(|i| BitSet::from_iter(3, [i])).collect();
        Schedule::non_sleeping(3, t)
    }

    #[test]
    fn round_robin_basics() {
        let s = rr3();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.frame_length(), 3);
        assert!(s.is_non_sleeping());
        assert!(s.is_alpha_schedule(1, 2));
        assert!(!s.is_alpha_schedule(1, 1));
        assert_eq!(s.t_sizes(), vec![1, 1, 1]);
        assert_eq!(s.r_sizes(), vec![2, 2, 2]);
        assert_eq!(s.t_size_range(), (1, 1));
        for x in 0..3 {
            assert_eq!(s.tran(x), &BitSet::from_iter(3, [x]));
            assert_eq!(s.recv(x), &BitSet::from_iter(3, (0..3).filter(|&i| i != x)));
            assert_eq!(s.duty_cycle(x), 1.0);
        }
        assert_eq!(s.average_duty_cycle(), 1.0);
    }

    #[test]
    fn sigma_and_free_slots() {
        let s = rr3();
        // σ(0, 1): 0 transmits in slot 0, 1 listens there.
        assert_eq!(s.sigma(0, 1), BitSet::from_iter(3, [0]));
        assert_eq!(s.sigma(0, 0), BitSet::new(3), "no self-reception");
        // freeSlots(0, {1,2}) = {0}: nobody else transmits in slot 0.
        assert_eq!(s.free_slots(0, &[1, 2]), BitSet::from_iter(3, [0]));
        assert_eq!(s.free_slots(0, &[]), BitSet::from_iter(3, [0]));
    }

    #[test]
    fn duty_cycled_schedule() {
        // 4 nodes, 2 slots: slot 0 = {0}→{1}, slot 1 = {1}→{0}; 2,3 sleep.
        let t = vec![BitSet::from_iter(4, [0]), BitSet::from_iter(4, [1])];
        let r = vec![BitSet::from_iter(4, [1]), BitSet::from_iter(4, [0])];
        let s = Schedule::new(4, t, r);
        assert!(!s.is_non_sleeping());
        assert!(s.is_alpha_schedule(1, 1));
        assert_eq!(s.duty_cycle(0), 1.0);
        assert_eq!(s.duty_cycle(2), 0.0);
        assert_eq!(s.average_duty_cycle(), 0.5);
        assert!(s.sigma(0, 1).contains(0));
        assert!(s.sigma(2, 3).is_empty());
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            Schedule::try_new(2, vec![BitSet::new(2)], vec![]).unwrap_err(),
            ScheduleError::LengthMismatch { t_len: 1, r_len: 0 }
        );
        assert_eq!(
            Schedule::try_new(2, vec![], vec![]).unwrap_err(),
            ScheduleError::EmptyFrame
        );
        assert_eq!(
            Schedule::try_new(3, vec![BitSet::new(2)], vec![BitSet::new(3)]).unwrap_err(),
            ScheduleError::UniverseMismatch {
                array: "T",
                slot: 0,
                found: 2,
                expected: 3
            }
        );
        assert_eq!(
            Schedule::try_new(
                2,
                vec![BitSet::from_iter(2, [0])],
                vec![BitSet::from_iter(2, [0, 1])]
            )
            .unwrap_err(),
            ScheduleError::TransmitReceiveOverlap { slot: 0 }
        );
        assert!(Schedule::try_new(
            2,
            vec![BitSet::from_iter(2, [0])],
            vec![BitSet::from_iter(2, [1])]
        )
        .is_ok());
    }

    #[test]
    #[should_panic(expected = "intersect")]
    fn overlapping_t_r_rejected() {
        let t = vec![BitSet::from_iter(2, [0])];
        let r = vec![BitSet::from_iter(2, [0, 1])];
        Schedule::new(2, t, r);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn length_mismatch_rejected() {
        Schedule::new(2, vec![BitSet::new(2)], vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn empty_schedule_rejected() {
        Schedule::new(2, vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn wrong_universe_rejected() {
        Schedule::new(3, vec![BitSet::new(2)], vec![BitSet::new(3)]);
    }

    #[test]
    fn from_cff_transposes_blocks() {
        let cff = CoverFreeFamily::identity(4);
        let s = Schedule::from_cff(&cff);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.frame_length(), 4);
        assert!(s.is_non_sleeping());
        for x in 0..4 {
            assert_eq!(s.tran(x), &BitSet::from_iter(4, [x]));
        }
    }

    #[test]
    fn from_cff_polynomial_slot_counts() {
        // q=3, k=1, all 9 nodes: every slot (i, j) has exactly q^k = 3
        // transmitters (polynomials with f(i) = j).
        let gf = ttdc_combinatorics::Gf::new(3).unwrap();
        let cff = CoverFreeFamily::from_polynomials(&gf, 1, 9);
        let s = Schedule::from_cff(&cff);
        assert_eq!(s.frame_length(), 9);
        assert!(s.t_sizes().iter().all(|&c| c == 3));
        assert!(s.is_non_sleeping());
        // Every node transmits q = 3 times per frame.
        for x in 0..9 {
            assert_eq!(s.tran(x).len(), 3);
        }
    }

    #[test]
    fn truncation() {
        let s = rr3();
        let t = s.truncated(2);
        assert_eq!(t.frame_length(), 2);
        assert_eq!(t.transmitters(0), s.transmitters(0));
        assert_eq!(t.tran(2).len(), 0, "node 2's slot was cut off");
    }

    #[test]
    #[should_panic]
    fn truncation_out_of_range() {
        rr3().truncated(4);
    }
}
