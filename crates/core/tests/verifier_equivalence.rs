//! The incremental verifier engine must be indistinguishable from the
//! naive reference scans.
//!
//! Every hot path routed through the subset-delta engine (revolving-door
//! enumeration + `CoverCounter`, witness-safe pruning, parallel outer loop
//! with the deterministic-witness rule) has a `*_naive` twin that walks the
//! same enumeration order but rebuilds every union from scratch, serially.
//! These proptests fire random schedules at both and demand:
//!
//! * identical Requirement-1/2/3 **verdicts and witnesses** (the full
//!   `Violation`, not just the boolean), and
//! * bit-identical min/average throughput,
//!
//! on a forced 1-thread pool *and* a 4-thread pool — so the equivalence
//! holds regardless of how the parallel outer loop is scheduled.

use proptest::prelude::*;
use rayon::ThreadPool;
use std::sync::OnceLock;
use ttdc_core::requirements::{
    requirement1_violation, requirement1_violation_naive, requirement2_violation,
    requirement2_violation_naive, requirement3_violation, requirement3_violation_naive,
};
use ttdc_core::throughput::{
    average_throughput_bruteforce, average_throughput_bruteforce_naive, min_throughput,
    min_throughput_naive,
};
use ttdc_core::Schedule;
use ttdc_util::BitSet;

fn sequential_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
    })
}

fn parallel_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    })
}

/// A random schedule over `n ∈ [4, 8]` nodes with `L ∈ [1, 6]` slots (same
/// generator as the parallel-determinism suite).
fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (4usize..=8)
        .prop_flat_map(|n| {
            let slot = (1u32..(1 << n), prop::bits::u32::masked((1 << n) - 1));
            (Just(n), prop::collection::vec(slot, 1..=6))
        })
        .prop_map(|(n, slots)| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                let tset = BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1));
                let rset =
                    BitSet::from_iter(n, (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0));
                t.push(tset);
                r.push(rset);
            }
            Schedule::new(n, t, r)
        })
}

proptest! {
    /// Requirement 1: same verdict AND same witness, at 1 and 4 threads.
    #[test]
    fn requirement1_witness_identical(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let naive = requirement1_violation_naive(&s, d);
        let seq = sequential_pool().install(|| requirement1_violation(&s, d));
        let par = parallel_pool().install(|| requirement1_violation(&s, d));
        prop_assert_eq!(&seq, &naive, "1-thread incremental vs naive");
        prop_assert_eq!(&par, &naive, "4-thread incremental vs naive");
    }

    /// Requirement 2: same verdict AND same witness, at 1 and 4 threads.
    #[test]
    fn requirement2_witness_identical(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let naive = requirement2_violation_naive(&s, d);
        let seq = sequential_pool().install(|| requirement2_violation(&s, d));
        let par = parallel_pool().install(|| requirement2_violation(&s, d));
        prop_assert_eq!(&seq, &naive, "1-thread incremental vs naive");
        prop_assert_eq!(&par, &naive, "4-thread incremental vs naive");
    }

    /// Requirement 3: same verdict AND same witness, at 1 and 4 threads.
    #[test]
    fn requirement3_witness_identical(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let naive = requirement3_violation_naive(&s, d);
        let seq = sequential_pool().install(|| requirement3_violation(&s, d));
        let par = parallel_pool().install(|| requirement3_violation(&s, d));
        prop_assert_eq!(&seq, &naive, "1-thread incremental vs naive");
        prop_assert_eq!(&par, &naive, "4-thread incremental vs naive");
    }

    /// Definition-1 minimum throughput: bit-identical to the naive scan.
    #[test]
    fn min_throughput_bit_identical(s in arb_schedule(), d in 1usize..3) {
        prop_assume!(d < s.num_nodes());
        let naive = min_throughput_naive(&s, d);
        let seq = sequential_pool().install(|| min_throughput(&s, d));
        let par = parallel_pool().install(|| min_throughput(&s, d));
        prop_assert_eq!(seq.to_bits(), naive.to_bits(), "seq {} vs naive {}", seq, naive);
        prop_assert_eq!(par.to_bits(), naive.to_bits(), "par {} vs naive {}", par, naive);
    }

    /// Definition-2 average throughput: bit-identical to the naive scan
    /// (the u128 accumulation makes enumeration order irrelevant).
    #[test]
    fn average_throughput_bit_identical(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let naive = average_throughput_bruteforce_naive(&s, d);
        let seq = sequential_pool().install(|| average_throughput_bruteforce(&s, d));
        let par = parallel_pool().install(|| average_throughput_bruteforce(&s, d));
        prop_assert_eq!(seq.to_bits(), naive.to_bits(), "seq {} vs naive {}", seq, naive);
        prop_assert_eq!(par.to_bits(), naive.to_bits(), "par {} vs naive {}", par, naive);
    }
}
