//! Property tests for the paper's theorems on randomly generated schedules.
//!
//! These are the strongest checks in the workspace: each proptest encodes a
//! theorem's statement directly and fires it at arbitrary schedules, not
//! just the structured ones the unit tests use.

use proptest::prelude::*;
use ttdc_core::analysis::{constructed_frame_length, optimality_ratio_via_r, r_ratio};
use ttdc_core::bounds::{alpha_bound, general_bound};
use ttdc_core::construct::{construct_exact, PartitionStrategy};
use ttdc_core::requirements::{satisfies_requirement2, satisfies_requirement3};
use ttdc_core::throughput::{
    average_throughput, average_throughput_bruteforce, guaranteed_slots, min_throughput,
};
use ttdc_core::{io, Schedule};
use ttdc_util::BitSet;

/// A random schedule over `n ∈ [4, 8]` nodes with `L ∈ [1, 6]` slots.
/// Each slot gets a random non-empty transmitter set and a random receiver
/// subset of its complement.
fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (4usize..=8)
        .prop_flat_map(|n| {
            let slot = (1u32..(1 << n), prop::bits::u32::masked((1 << n) - 1));
            (Just(n), prop::collection::vec(slot, 1..=6))
        })
        .prop_map(|(n, slots)| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                let tset = BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1));
                let rset =
                    BitSet::from_iter(n, (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0));
                t.push(tset);
                r.push(rset);
            }
            Schedule::new(n, t, r)
        })
}

/// A random *non-sleeping* schedule (R = complement of T).
fn arb_non_sleeping() -> impl Strategy<Value = Schedule> {
    (4usize..=8)
        .prop_flat_map(|n| {
            // T[i] non-empty and proper, so receivers exist.
            (Just(n), prop::collection::vec(1u32..((1 << n) - 1), 1..=6))
        })
        .prop_map(|(n, masks)| {
            let t = masks
                .iter()
                .map(|&tm| BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1)))
                .collect();
            Schedule::non_sleeping(n, t)
        })
}

/// A seed-deterministic permutation of `0..n` (Fisher–Yates over splitmix).
fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        p.swap(i, j);
    }
    p
}

proptest! {
    /// Theorem 1: Requirements 2 and 3 accept and reject exactly the same
    /// schedules, for every degree bound.
    #[test]
    fn theorem1_req2_iff_req3(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        prop_assert_eq!(
            satisfies_requirement2(&s, d),
            satisfies_requirement3(&s, d),
            "n={} L={} d={}", s.num_nodes(), s.frame_length(), d
        );
    }

    /// Theorem 2: the closed-form average throughput equals the brute-force
    /// enumeration of Definition 2.
    #[test]
    fn theorem2_closed_form_equals_enumeration(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let closed = average_throughput(&s, d);
        let brute = average_throughput_bruteforce(&s, d);
        prop_assert!((closed - brute).abs() < 1e-12, "closed {} vs brute {}", closed, brute);
    }

    /// Theorem 3: no schedule exceeds the general upper bound.
    #[test]
    fn theorem3_bound_dominates(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let b = general_bound(s.num_nodes(), d);
        prop_assert!(average_throughput(&s, d) <= b.thr_star + 1e-12);
        prop_assert!(b.thr_star <= b.loose + 1e-12);
    }

    /// Theorem 4: no (α_T, α_R)-schedule exceeds its bound, taking the
    /// actual per-slot maxima as the α's.
    #[test]
    fn theorem4_bound_dominates(s in arb_schedule(), d in 1usize..4) {
        let n = s.num_nodes();
        prop_assume!(d < n);
        let at = s.t_sizes().into_iter().max().unwrap().max(1);
        let ar = s.r_sizes().into_iter().max().unwrap().max(1);
        prop_assume!(at + ar <= n);
        let b = alpha_bound(n, d, at, ar);
        prop_assert!(average_throughput(&s, d) <= b.thr_star + 1e-12);
    }

    /// `Thr_min > 0` iff topology-transparent (§5 remark after Def. 2).
    #[test]
    fn min_throughput_positive_iff_transparent(s in arb_schedule(), d in 1usize..3) {
        prop_assume!(d < s.num_nodes());
        let thr = min_throughput(&s, d);
        prop_assert_eq!(thr > 0.0, satisfies_requirement3(&s, d));
    }

    /// Lemma-5 core (used by Theorem 9): the construction never loses
    /// guaranteed slots per frame, for any (x, y, S) — even when the input
    /// schedule is not topology-transparent.
    #[test]
    fn construction_preserves_guaranteed_slots(
        ns in arb_non_sleeping(),
        at in 1usize..3,
        ar in 1usize..3,
        pick in 0usize..1000,
    ) {
        let n = ns.num_nodes();
        prop_assume!(at + ar <= n);
        let c = construct_exact(&ns, at, ar, PartitionStrategy::RoundRobin);
        // Derive a pseudo-random (x, y, S) with |S| ≤ 2 from `pick`.
        let x = pick % n;
        let y = (pick / n) % n;
        prop_assume!(x != y);
        let s1 = (pick / (n * n)) % n;
        let others: Vec<usize> = [s1]
            .into_iter()
            .filter(|&z| z != x && z != y)
            .collect();
        let before = guaranteed_slots(&ns, x, y, &others).len();
        let after = guaranteed_slots(&c.schedule, x, y, &others).len();
        prop_assert!(after >= before, "(x={}, y={}, S={:?}): {} -> {}", x, y, others, before, after);
    }

    /// Theorem 7: the constructed frame length matches the formula exactly,
    /// for arbitrary non-sleeping inputs and partition strategies.
    #[test]
    fn theorem7_frame_length(ns in arb_non_sleeping(), at in 1usize..4, ar in 1usize..4, strat in 0usize..3) {
        let n = ns.num_nodes();
        prop_assume!(at + ar <= n);
        let strategy = [
            PartitionStrategy::Contiguous,
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Randomized { seed: 9 },
        ][strat];
        let c = construct_exact(&ns, at, ar, strategy);
        prop_assert_eq!(
            c.schedule.frame_length(),
            constructed_frame_length(&ns.t_sizes(), n, at, ar)
        );
        prop_assert!(c.schedule.is_alpha_schedule(at, ar));
        // Every constructed slot has exactly α_R receivers (line 8 padding).
        for i in 0..c.schedule.frame_length() {
            prop_assert_eq!(c.schedule.receivers(i).len(), ar);
        }
    }

    /// §7 identity: Thr_ave/Thr* = (1/L̄)·Σ r(|T̄[i]|) whenever every
    /// constructed slot has α_R receivers — equivalently, the measured
    /// ratio via Theorem 2 equals the r-sum.
    #[test]
    fn theorem8_r_identity(ns in arb_non_sleeping(), d in 1usize..3) {
        let n = ns.num_nodes();
        prop_assume!(d < n);
        let b = alpha_bound(n, d, n / 2, n - n / 2 - 1 + 1);
        prop_assume!(b.alpha_t_star < n);
        // r(x) must be defined: n − (D−1) − α_T* > 0 holds by construction.
        let ar = n - b.alpha_t_star.max(1);
        let ar = ar.clamp(1, 3);
        prop_assume!(b.alpha_t_star + ar <= n);
        let c = construct_exact(&ns, b.alpha_t_star, ar, PartitionStrategy::Contiguous);
        let thr = average_throughput(&c.schedule, d);
        let thr_star = alpha_bound(n, d, b.alpha_t_star, ar).thr_star;
        let via_r = optimality_ratio_via_r(&c.schedule, d, b.alpha_t_star);
        prop_assert!((thr / thr_star - via_r).abs() < 1e-9,
            "direct {} vs r-identity {}", thr / thr_star, via_r);
        // And Theorem 8's equality case: if every |T[i]| ≥ α_T*, ratio = 1.
        if ns.t_sizes().iter().all(|&t| t >= b.alpha_t_star) {
            prop_assert!((thr / thr_star - 1.0).abs() < 1e-9);
        }
    }

    /// Serialization: any schedule survives the text round trip intact.
    #[test]
    fn io_round_trip(s in arb_schedule()) {
        let text = io::to_text(&s);
        let back = io::from_text(&text).unwrap();
        prop_assert_eq!(s, back);
    }

    /// Canonical fingerprints are invariant under node and slot
    /// relabeling: every permuted copy of a schedule hashes identically.
    #[test]
    fn fingerprint_invariant_under_relabeling(
        s in arb_schedule(),
        pseed in any::<u64>(),
        qseed in any::<u64>(),
    ) {
        let n = s.num_nodes();
        let l = s.frame_length();
        let p = shuffled(n, pseed);
        let q = shuffled(l, qseed);
        let mut t = vec![BitSet::new(n); l];
        let mut r = vec![BitSet::new(n); l];
        for i in 0..l {
            for x in s.transmitters(i).iter() {
                t[q[i]].insert(p[x]);
            }
            for x in s.receivers(i).iter() {
                r[q[i]].insert(p[x]);
            }
        }
        let relabeled = Schedule::new(n, t, r);
        prop_assert_eq!(s.canonical_fingerprint(), relabeled.canonical_fingerprint());
    }

    /// Structurally distinct schedules get distinct fingerprints: mutating
    /// one slot's transmitter set into a different valid set changes the
    /// hash (WL refinement plus 64-bit mixing; a collision here would mean
    /// either WL-indistinguishability or a hash clash, neither of which
    /// random irregular schedules should exhibit).
    #[test]
    fn fingerprint_separates_mutated_schedules(
        s in arb_schedule(),
        slot_pick in any::<u64>(),
        node_pick in any::<u64>(),
    ) {
        let n = s.num_nodes();
        let l = s.frame_length();
        let i = (slot_pick % l as u64) as usize;
        let x = (node_pick % n as u64) as usize;
        let mut t: Vec<BitSet> = (0..l).map(|j| s.transmitters(j).clone()).collect();
        let mut r: Vec<BitSet> = (0..l).map(|j| s.receivers(j).clone()).collect();
        // Toggle node x's transmit role in slot i (dropping it from R to
        // keep T ∩ R empty); skip degenerate outcomes (empty T).
        if t[i].contains(x) {
            t[i].remove(x);
        } else {
            t[i].insert(x);
            r[i].remove(x);
        }
        prop_assume!(!t[i].is_empty());
        let mutated = Schedule::new(n, t, r);
        // The mutation can land on a relabel-equivalent schedule (toggling
        // between symmetric positions), where colliding is *correct*. Only
        // assert when the sorted per-slot (|T|, |R|) sequences differ — a
        // sufficient condition for genuine non-equivalence.
        let degs = |sch: &Schedule| {
            let mut v: Vec<(usize, usize)> = (0..sch.frame_length())
                .map(|j| (sch.transmitters(j).len(), sch.receivers(j).len()))
                .collect();
            v.sort_unstable();
            v
        };
        prop_assume!(degs(&mutated) != degs(&s));
        prop_assert_ne!(s.canonical_fingerprint(), mutated.canonical_fingerprint());
    }

    /// r(x) sanity: r(α_T*) = 1 and r is non-negative on [0, α_T*].
    #[test]
    fn r_ratio_properties(n in 5usize..30, d in 1usize..4, a in 1usize..5) {
        prop_assume!(d < n);
        prop_assume!(n as isize - (d as isize - 1) - a as isize > 0);
        prop_assert!((r_ratio(n, d, a, a) - 1.0).abs() < 1e-12);
        for x in 0..=a {
            prop_assert!(r_ratio(n, d, a, x) >= -1e-12);
        }
    }
}
