//! Admissibility oracles for the search's lower-bound hierarchy.
//!
//! Three properties keep the branch-and-bound exact:
//!
//! 1. every configured bound (ceiling, matching, LP dual-ascent) is a true
//!    lower bound on the *residual* optimum — checked against an
//!    independent brute-force set-cover solver on randomly covered
//!    sub-instances;
//! 2. the matching bound dominates the ceiling bound (so enabling it can
//!    only tighten the search);
//! 3. the fully pruned default search returns the *identical* `(len, lex)`
//!    winner as a prune-free exhaustive search, at 1 and at 4 worker
//!    threads.

use proptest::proptest;
use ttdc_core::synth::demands::{CandidateSpace, DemandSpace};
use ttdc_core::synth::search::{
    ceiling_bound, lp_bound, matching_bound, minimum_cover, SearchOptions,
};
use ttdc_util::{BitSet, DualAscent};

/// Parameter points small enough for the brute-force reference.
const POINTS: &[(usize, usize, usize, usize)] = &[
    (4, 1, 1, 1),
    (4, 1, 1, 2),
    (4, 2, 2, 2),
    (5, 1, 1, 2),
    (5, 1, 2, 2),
];

/// Independent exact minimum cover of `unc` by candidate coverages:
/// branch on the first uncovered demand, try each of its suppliers.
/// Shares no bound or pruning code with the search under test (the only
/// cut is the trivial "already no shorter than the best found").
fn brute_force_optimum(cands: &CandidateSpace, unc: &BitSet) -> usize {
    fn dfs(cands: &CandidateSpace, unc: &BitSet, depth: usize, best: &mut usize) {
        if unc.is_empty() {
            *best = (*best).min(depth);
            return;
        }
        if depth + 1 >= *best {
            return;
        }
        let e = unc.iter().next().expect("nonempty");
        for &c in &cands.suppliers[e] {
            let mut next = unc.clone();
            next.difference_with(&cands.cands[c as usize].coverage);
            dfs(cands, &next, depth + 1, best);
        }
    }
    let mut best = usize::MAX / 2;
    dfs(cands, unc, 0, &mut best);
    best
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(24))]

    /// Every bound in the hierarchy is admissible on residual instances,
    /// and the matching bound never falls below the ceiling bound.
    #[test]
    fn bounds_are_admissible_on_residual_instances(
        point_idx in 0usize..5,
        cover_seed in 0u64..1u64 << 48,
        passes in 0usize..3,
    ) {
        let (n, d, at, ar) = POINTS[point_idx];
        let space = DemandSpace::new(n, d);
        let cands = CandidateSpace::new(&space, at, ar);

        // A pseudo-random partial cover: every third-or-so candidate is
        // "already chosen", leaving a nontrivial residual instance.
        let mut unc = BitSet::from_iter(space.len(), 0..space.len());
        let mut state = cover_seed | 1;
        for c in &cands.cands {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 61 == 0 {
                unc.difference_with(&c.coverage);
            }
        }
        let optimum = brute_force_optimum(&cands, &unc);

        let ceiling = ceiling_bound(unc.len(), cands.max_gain);
        let mut blocked = BitSet::new(space.len());
        let matching = matching_bound(&cands, &unc, &mut blocked);
        let banned = vec![false; cands.cands.len()];
        let mut lp = DualAscent::new(cands.cands.len());
        let lp_val = lp_bound(&cands, &unc, &banned, passes, &mut lp);

        assert!(
            ceiling <= optimum,
            "({n},{d},{at},{ar}): ceiling {ceiling} > optimum {optimum}"
        );
        assert!(
            matching <= optimum,
            "({n},{d},{at},{ar}): matching {matching} > optimum {optimum}"
        );
        assert!(
            lp_val <= optimum,
            "({n},{d},{at},{ar}): lp {lp_val} > optimum {optimum} (passes {passes})"
        );
        assert!(
            matching >= ceiling,
            "({n},{d},{at},{ar}): matching {matching} must dominate ceiling {ceiling}"
        );
    }

    /// The default pruned search and a prune-free exhaustive search agree
    /// on the exact `(len, lex)` winner — the slot list, not just the
    /// length — at 1 and 4 worker threads.
    #[test]
    fn pruned_search_preserves_the_exhaustive_winner(point_idx in 0usize..5) {
        let (n, d, at, ar) = POINTS[point_idx];
        let space = DemandSpace::new(n, d);
        let cands = CandidateSpace::new(&space, at, ar);
        let bare = SearchOptions {
            prune: false,
            dominance: false,
            lex_prune: false,
            symmetry: false,
            sub_symmetry: false,
            ..SearchOptions::default()
        };
        let (reference, ref_stats) = minimum_cover(&space, &cands, &bare);
        assert!(ref_stats.exact);
        for threads in [1usize, 4] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (pruned, stats) =
                pool.install(|| minimum_cover(&space, &cands, &SearchOptions::default()));
            assert!(stats.exact);
            assert_eq!(
                pruned.slots, reference.slots,
                "({n},{d},{at},{ar}) at {threads} thread(s): winner drifted"
            );
        }
    }
}
