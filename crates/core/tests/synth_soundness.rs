//! Soundness and determinism suite for the schedule synthesizer.
//!
//! Three independent trust anchors:
//!
//! 1. **Naive oracles.** Every synthesized schedule is re-verified by the
//!    exhaustive Requirement 1/2/3 verifiers and the cover-free-family
//!    check on its transmit sets — none of which share code with the
//!    search.
//! 2. **Catalog round trips.** Entries serialize and re-parse
//!    byte-identically, and the validator rejects tampering.
//! 3. **Thread-count determinism.** The winning schedule is bit-identical
//!    whether the branch-and-bound fans out over 1 thread or 4, for both
//!    exact and budget-limited searches.

use proptest::proptest;
use ttdc_combinatorics::CoverFreeFamily;
use ttdc_core::requirements::{
    requirement1_violation_naive, requirement2_violation_naive, requirement3_violation_naive,
};
use ttdc_core::synth::search::SearchOptions;
use ttdc_core::synth::{catalog, synthesize, SynthOptions, SynthProblem};

/// Small parameter points the exact search finishes quickly on.
const POINTS: &[(usize, usize, usize, usize)] = &[
    (4, 1, 1, 1),
    (5, 1, 1, 2),
    (5, 2, 1, 2),
    (4, 2, 2, 2),
    (5, 1, 2, 2),
    (5, 3, 1, 2),
];

fn synth_and_check(n: usize, d: usize, at: usize, ar: usize, opts: &SynthOptions) {
    let p = SynthProblem::new(n, d, at, ar);
    let out = synthesize(&p, opts);
    let s = &out.schedule;
    assert!(
        s.is_alpha_schedule(at, ar),
        "({n},{d},{at},{ar}): α caps violated"
    );
    assert!(
        requirement1_violation_naive(s, d).is_none(),
        "({n},{d},{at},{ar}): Requirement 1 violated"
    );
    assert!(
        requirement2_violation_naive(s, d).is_none(),
        "({n},{d},{at},{ar}): Requirement 2 violated"
    );
    assert!(
        requirement3_violation_naive(s, d).is_none(),
        "({n},{d},{at},{ar}): Requirement 3 violated"
    );
    let blocks: Vec<_> = (0..n).map(|x| s.tran(x).clone()).collect();
    let fam = CoverFreeFamily::from_blocks(s.frame_length(), blocks);
    assert!(
        fam.is_d_cover_free(d),
        "({n},{d},{at},{ar}): transmit sets not {d}-cover-free"
    );
}

#[test]
fn synthesized_schedules_pass_every_naive_oracle() {
    for &(n, d, at, ar) in POINTS {
        synth_and_check(n, d, at, ar, &SynthOptions::default());
    }
}

#[test]
fn budgeted_synthesis_is_still_sound() {
    // A starved search budget forces the greedy/polish path; the result
    // must still pass every oracle.
    let opts = SynthOptions {
        search: SearchOptions {
            max_nodes: Some(3),
            ..SearchOptions::default()
        },
        ..SynthOptions::default()
    };
    for &(n, d, at, ar) in POINTS {
        synth_and_check(n, d, at, ar, &opts);
    }
}

#[test]
fn catalog_entries_round_trip_byte_identically_for_every_point() {
    for &(n, d, at, ar) in POINTS {
        let p = SynthProblem::new(n, d, at, ar);
        let out = synthesize(&p, &SynthOptions::default());
        let entry = catalog::CatalogEntry {
            problem: p,
            fingerprint: out.fingerprint,
            schedule: out.schedule,
            exact: out.stats.exact,
            nodes: out.stats.nodes,
            source: "synth".to_string(),
            config: Some(SearchOptions::default().config_string()),
        };
        let text = catalog::entry_to_text(&entry);
        let back = catalog::entry_from_text(&text).unwrap();
        assert_eq!(entry, back, "({n},{d},{at},{ar})");
        assert_eq!(
            text,
            catalog::entry_to_text(&back),
            "({n},{d},{at},{ar}): bytes drifted through a round trip"
        );
    }
}

fn run_with_threads(p: &SynthProblem, opts: &SynthOptions, threads: usize) -> (u64, usize) {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    let out = pool.install(|| synthesize(p, opts));
    (out.fingerprint, out.schedule.frame_length())
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(12))]

    /// The winning schedule is bit-identical at 1 and 4 worker threads —
    /// the ordered-reduction incumbent rule removes all timing dependence.
    #[test]
    fn determinism_one_thread_vs_four(
        point_idx in 0usize..6,
        budget_raw in 0u64..4,
    ) {
        let (n, d, at, ar) = POINTS[point_idx];
        let p = SynthProblem::new(n, d, at, ar);
        // budget_raw == 0: exact search; otherwise a node budget, which
        // exercises the timing-independent budget cutoff.
        let opts = SynthOptions {
            search: SearchOptions {
                max_nodes: (budget_raw > 0).then_some(budget_raw * 50),
                ..SearchOptions::default()
            },
            ..SynthOptions::default()
        };
        let single = run_with_threads(&p, &opts, 1);
        let parallel = run_with_threads(&p, &opts, 4);
        assert_eq!(single, parallel, "({n},{d},{at},{ar}) budget {budget_raw}");
        // Fingerprint equality is necessary; require the stronger
        // bit-identical slot sequence too.
        let a = rayon::ThreadPoolBuilder::new().num_threads(1).build().unwrap()
            .install(|| synthesize(&p, &opts));
        let b = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap()
            .install(|| synthesize(&p, &opts));
        assert_eq!(a.schedule, b.schedule, "({n},{d},{at},{ar}) budget {budget_raw}");
        assert_eq!(a.stats.exact, b.stats.exact);
    }
}

#[test]
fn exact_search_matches_known_trivial_optima() {
    // At α_T = α_R = 1 and D = n−1 every slot carries exactly one
    // (transmitter, receiver) pair and every ordered pair must appear:
    // the optimum is exactly n·(n−1).
    for n in [3usize, 4] {
        let p = SynthProblem::new(n, n - 1, 1, 1);
        let out = synthesize(&p, &SynthOptions::default());
        assert!(out.stats.exact);
        assert_eq!(
            out.schedule.frame_length(),
            n * (n - 1),
            "n = {n}: ordered-pair lower bound"
        );
    }
}
