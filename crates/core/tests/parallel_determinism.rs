//! Parallel execution must be observationally identical to sequential.
//!
//! The vendored rayon combines chunk results in index order, so every
//! analysis in this crate — exhaustive throughput enumeration, requirement
//! checks, access-delay scans — must return **bit-for-bit** the same answer
//! on a 4-thread pool as on a forced-sequential (`num_threads = 1`) pool.
//! These proptests fire that claim at arbitrary schedules.

use proptest::prelude::*;
use rayon::ThreadPool;
use std::sync::OnceLock;
use ttdc_core::latency::{average_access_delay, worst_case_access_delay};
use ttdc_core::requirements::is_topology_transparent_par;
use ttdc_core::throughput::{average_throughput_bruteforce, min_throughput};
use ttdc_core::Schedule;
use ttdc_util::BitSet;

fn sequential_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
    })
}

fn parallel_pool() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap()
    })
}

/// A random schedule over `n ∈ [4, 8]` nodes with `L ∈ [1, 6]` slots (same
/// generator as the theorem proptests).
fn arb_schedule() -> impl Strategy<Value = Schedule> {
    (4usize..=8)
        .prop_flat_map(|n| {
            let slot = (1u32..(1 << n), prop::bits::u32::masked((1 << n) - 1));
            (Just(n), prop::collection::vec(slot, 1..=6))
        })
        .prop_map(|(n, slots)| {
            let mut t = Vec::new();
            let mut r = Vec::new();
            for (tm, rm) in slots {
                let tset = BitSet::from_iter(n, (0..n).filter(|&i| tm >> i & 1 == 1));
                let rset =
                    BitSet::from_iter(n, (0..n).filter(|&i| rm >> i & 1 == 1 && tm >> i & 1 == 0));
                t.push(tset);
                r.push(rset);
            }
            Schedule::new(n, t, r)
        })
}

proptest! {
    /// Definition-2 brute force: the parallel u128 accumulation is exact,
    /// so the final f64 must match to the bit.
    #[test]
    fn bruteforce_throughput_matches_sequential(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let seq = sequential_pool().install(|| average_throughput_bruteforce(&s, d));
        let par = parallel_pool().install(|| average_throughput_bruteforce(&s, d));
        prop_assert_eq!(seq.to_bits(), par.to_bits(), "seq {} vs par {}", seq, par);
    }

    /// Definition-1 minimum throughput: min over chunks equals the global min.
    #[test]
    fn min_throughput_matches_sequential(s in arb_schedule(), d in 1usize..3) {
        prop_assume!(d < s.num_nodes());
        let seq = sequential_pool().install(|| min_throughput(&s, d));
        let par = parallel_pool().install(|| min_throughput(&s, d));
        prop_assert_eq!(seq.to_bits(), par.to_bits());
    }

    /// The parallel Requirement-3 verdict agrees at any thread count.
    #[test]
    fn requirement_check_matches_sequential(s in arb_schedule(), d in 1usize..4) {
        prop_assume!(d < s.num_nodes());
        let seq = sequential_pool().install(|| is_topology_transparent_par(&s, d));
        let par = parallel_pool().install(|| is_topology_transparent_par(&s, d));
        prop_assert_eq!(seq, par);
    }

    /// Access-delay scans (`try_reduce` max and the collected mean) agree.
    #[test]
    fn access_delay_matches_sequential(s in arb_schedule(), d in 1usize..3) {
        prop_assume!(d < s.num_nodes());
        let seq_worst = sequential_pool().install(|| worst_case_access_delay(&s, d));
        let par_worst = parallel_pool().install(|| worst_case_access_delay(&s, d));
        prop_assert_eq!(seq_worst, par_worst);
        let seq_mean = sequential_pool().install(|| average_access_delay(&s, d));
        let par_mean = parallel_pool().install(|| average_access_delay(&s, d));
        prop_assert_eq!(seq_mean.map(f64::to_bits), par_mean.map(f64::to_bits));
    }
}
