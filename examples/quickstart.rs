//! Quickstart: build a topology-transparent duty-cycling schedule and look
//! at what the paper's guarantees buy you.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ttdc::core::bounds::alpha_bound;
use ttdc::core::construct::PartitionStrategy;
use ttdc::core::throughput::{average_throughput, min_throughput};
use ttdc::core::tsma::build_polynomial;
use ttdc::core::{construct, is_topology_transparent};

fn main() {
    // Deployment envelope: up to 40 sensors, radio degree at most 3.
    // Energy budget: at most 2 transmitters and 5 receivers awake per slot.
    let (n, d, alpha_t, alpha_r) = (40usize, 3usize, 2usize, 5usize);
    println!("network class N_n^D: n ≤ {n}, degree ≤ {d}");
    println!("energy budget: α_T = {alpha_t}, α_R = {alpha_r}\n");

    // Step 1 — a topology-transparent NON-SLEEPING schedule from the
    // polynomial / orthogonal-array construction (the substrate the paper
    // assumes as given).
    let ns = build_polynomial(n, d);
    let p = ns.params.unwrap();
    println!(
        "non-sleeping TSMA schedule: GF({}) with degree-{} polynomials, frame = {} slots",
        p.q.q,
        p.k,
        ns.schedule.frame_length()
    );
    println!(
        "  every node transmits {} slots/frame; duty cycle = {:.0}% (nobody sleeps)",
        ns.schedule.tran(0).len(),
        100.0 * ns.schedule.average_duty_cycle()
    );

    // Step 2 — the paper's Figure-2 construction: trade frame length for
    // sleep while keeping every topology in N_n^D deliverable.
    let c = construct(
        &ns.schedule,
        d,
        alpha_t,
        alpha_r,
        PartitionStrategy::RoundRobin,
    );
    let s = &c.schedule;
    println!(
        "\nconstructed (α_T, α_R)-schedule: frame = {} slots (α_T* = {})",
        s.frame_length(),
        c.alpha_t_star
    );
    println!(
        "  duty cycle = {:.1}% (bounded by (α_T+α_R)/n = {:.1}%)",
        100.0 * s.average_duty_cycle(),
        100.0 * (alpha_t + alpha_r) as f64 / n as f64
    );

    // Step 3 — the guarantees.
    assert!(is_topology_transparent(s, d));
    println!("\ntopology-transparent for every network in N_{n}^{d}: ✓ (Requirement 3)");
    let thr = average_throughput(s, d);
    let bound = alpha_bound(n, d, alpha_t, alpha_r).thr_star;
    println!(
        "average worst-case throughput = {thr:.6} = {:.1}% of the Theorem-4 optimum",
        100.0 * thr / bound
    );
    println!(
        "minimum worst-case throughput = {:.6} (> 0 ⟺ topology-transparent)",
        min_throughput(s, d)
    );
}
