//! Deployment workflow: compute a schedule offline, audit its guarantees
//! (transparency, throughput, latency bound), export it as the text
//! artefact that gets flashed onto motes, and prove the round trip is
//! lossless.
//!
//! ```sh
//! cargo run --release --example schedule_deployment
//! ```

use ttdc::core::construct::PartitionStrategy;
use ttdc::core::latency::{average_access_delay, worst_case_access_delay};
use ttdc::core::tsma::build_duty_cycled;
use ttdc::core::{average_throughput, io, is_topology_transparent, min_throughput};

fn main() {
    let (n, d, alpha_t, alpha_r) = (24usize, 3usize, 2usize, 4usize);
    println!("computing deployment schedule for N_{n}^{d}, budget ({alpha_t}, {alpha_r})...\n");
    let c = build_duty_cycled(n, d, alpha_t, alpha_r, PartitionStrategy::RoundRobin);
    let s = &c.schedule;

    // Pre-flight audit: everything an operator signs off on.
    assert!(is_topology_transparent(s, d));
    let worst = worst_case_access_delay(s, d).expect("transparent ⇒ bounded");
    println!("audit:");
    println!("  frame length        : {} slots", s.frame_length());
    println!(
        "  duty cycle          : {:.1}%",
        100.0 * s.average_duty_cycle()
    );
    println!("  topology-transparent: yes (every network in N_{n}^{d})");
    println!("  avg throughput      : {:.6}", average_throughput(s, d));
    println!("  min throughput      : {:.6}", min_throughput(s, d));
    println!(
        "  access delay        : worst {} slots (≤ frame), mean {:.1}",
        worst,
        average_access_delay(s, d).unwrap()
    );

    // Export the artefact.
    let text = io::to_text(s);
    let path = std::env::temp_dir().join("ttdc-deployment.schedule");
    std::fs::write(&path, &text).expect("write artefact");
    println!(
        "\nexported {} bytes to {} (first lines):",
        text.len(),
        path.display()
    );
    for line in text.lines().take(4) {
        println!("  | {line}");
    }

    // A gateway re-importing the artefact sees the identical schedule.
    let reloaded =
        io::from_text(&std::fs::read_to_string(&path).unwrap()).expect("artefact must parse");
    assert_eq!(&reloaded, s);
    println!("\nround trip: parsed schedule identical to the computed one ✓");

    // And a corrupted artefact is rejected with a located error.
    let mut corrupt = text.clone();
    corrupt.push_str("T=999 R=\n");
    match io::from_text(&corrupt) {
        Err(e) => println!("corruption detected as expected: {e}"),
        Ok(_) => unreachable!("corrupt artefact must not parse"),
    }
}
