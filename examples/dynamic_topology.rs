//! Topology transparency under mobility: nodes move (random waypoint), the
//! link graph keeps changing, and the schedule never needs recomputation —
//! contrast with a colouring TDMA that was optimal for the initial graph
//! and silently rots as the nodes drift.
//!
//! ```sh
//! cargo run --release --example dynamic_topology
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ttdc::core::construct::PartitionStrategy;
use ttdc::protocols::{ColoringTdmaMac, TtdcMac};
use ttdc::sim::{GeometricNetwork, MacProtocol, SimConfig, Simulator, TrafficPattern};

const N: usize = 25;
const D: usize = 4;
const EPOCHS: usize = 20;
const SLOTS_PER_EPOCH: u64 = 2_000;

fn main() {
    let mut rng = SmallRng::seed_from_u64(11);
    let field = GeometricNetwork::random(N, 0.35, D, &mut rng);
    let initial = field.topology();
    println!(
        "initial deployment: {} links, max degree {}\n",
        initial.num_edges(),
        initial.max_degree()
    );

    let ttdc = TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin);
    let tdma = ColoringTdmaMac::new(&initial); // computed ONCE, like real TDMA

    let run = |mac: &dyn MacProtocol, name: &str| {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut field = field.clone();
        let mut sim = Simulator::new(
            field.topology(),
            TrafficPattern::PoissonUnicast { rate: 0.002 },
            SimConfig {
                seed: 5,
                ..Default::default()
            },
        );
        println!("— {name} —");
        let mut last_delivered = 0u64;
        let mut last_generated = 0u64;
        for epoch in 0..EPOCHS {
            sim.run(mac, SLOTS_PER_EPOCH);
            // Nodes drift; links change; (n, D) envelope preserved.
            for _ in 0..40 {
                field.step(0.01, &mut rng);
            }
            sim.set_topology(field.topology());
            let r = sim.report();
            let ratio = (r.delivered - last_delivered) as f64
                / (r.generated - last_generated).max(1) as f64;
            if epoch % 5 == 4 {
                println!(
                    "  epochs {:>2}-{:>2}: delivery {:.2}, collisions so far {}",
                    epoch - 4,
                    epoch,
                    ratio,
                    r.collisions
                );
            }
            last_delivered = r.delivered;
            last_generated = r.generated;
        }
        let r = sim.report();
        println!(
            "  TOTAL: delivery ratio {:.3}, collisions {}\n",
            r.delivery_ratio(),
            r.collisions
        );
        r
    };

    let r_ttdc = run(&ttdc, "ttdc (topology-transparent)");
    let r_tdma = run(
        &tdma,
        "coloring-tdma (topology-dependent, computed for epoch 0)",
    );

    println!(
        "ttdc delivery {:.3} vs stale tdma {:.3} — the schedule that never \
         looked at the topology is the one still working after it changed.",
        r_ttdc.delivery_ratio(),
        r_tdma.delivery_ratio()
    );
}
