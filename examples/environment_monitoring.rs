//! Environment monitoring: the canonical WSN workload from the paper's
//! introduction. Sensors scattered over a field periodically report
//! readings to a sink over multiple hops; traffic is light, so idle
//! listening — not transmission — dominates the energy bill. Compare the
//! non-sleeping topology-transparent schedule against the paper's
//! duty-cycled construction on the same deployment.
//!
//! ```sh
//! cargo run --release --example environment_monitoring
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use ttdc::core::construct::PartitionStrategy;
use ttdc::protocols::{TsmaMac, TtdcMac};
use ttdc::sim::{GeometricNetwork, MacProtocol, SimConfig, SimReport, Simulator, TrafficPattern};

const N: usize = 30;
const D: usize = 4;
const SLOTS: u64 = 60_000;

fn field_deployment(seed: u64) -> ttdc::sim::Topology {
    let mut rng = SmallRng::seed_from_u64(seed);
    loop {
        let t = GeometricNetwork::random(N, 0.3, D, &mut rng).topology();
        if t.is_connected() {
            return t;
        }
    }
}

fn monitor(mac: &dyn MacProtocol, topo: ttdc::sim::Topology) -> SimReport {
    let mut sim = Simulator::new(
        topo,
        // Light traffic: each sensor reports every ~3000 slots — the
        // regime the paper targets ("networks where the traffic load is
        // light most of the time", §1).
        TrafficPattern::Convergecast {
            sink: 0,
            rate: 0.0003,
        },
        SimConfig {
            seed: 7,
            ..Default::default()
        },
    );
    sim.run(mac, SLOTS);
    sim.report()
}

fn main() {
    let topo = field_deployment(42);
    println!(
        "field deployment: {N} sensors, {} links, max degree {}, sink = node 0\n",
        topo.num_edges(),
        topo.max_degree()
    );

    let ttdc = TtdcMac::new(N, D, 2, 4, PartitionStrategy::RoundRobin);
    let tsma = TsmaMac::new(N, D);

    println!(
        "{:<12} {:>9} {:>9} {:>12} {:>14} {:>12} {:>10}",
        "protocol", "delivered", "ratio", "latency", "energy/node", "mJ/packet", "duty"
    );
    for (name, mac) in [("ttdc", &ttdc as &dyn MacProtocol), ("tsma", &tsma)] {
        let r = monitor(mac, topo.clone());
        println!(
            "{:<12} {:>9} {:>9.3} {:>9.1} sl {:>11.1} mJ {:>9.2} {:>10.3}",
            name,
            r.delivered,
            r.delivery_ratio(),
            r.latency.mean(),
            r.energy.mean_mj(),
            r.energy_per_delivery_mj(),
            r.mean_duty_cycle(),
        );
    }
    println!(
        "\nSame reports collected; the duty-cycled schedule pays latency \
         (longer frame) to cut the per-node energy bill — that is the \
         paper's trade in one table."
    );
}
