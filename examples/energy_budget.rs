//! Sizing the energy budget: sweep `(α_T, α_R)` for a fixed deployment and
//! print the trade-off surface the paper's Theorems 4, 7 and 8 predict —
//! throughput optimality vs frame length vs duty cycle — so an operator
//! can pick the knee.
//!
//! ```sh
//! cargo run --release --example energy_budget
//! ```

use ttdc::core::analysis::optimality_ratio;
use ttdc::core::bounds::{alpha_bound, optimize_budget};
use ttdc::core::construct::PartitionStrategy;
use ttdc::core::tsma::build_polynomial;
use ttdc::core::{construct, is_topology_transparent};

fn main() {
    let (n, d) = (30usize, 3usize);
    let ns = build_polynomial(n, d);
    println!(
        "deployment envelope N_{n}^{d}; source schedule: frame {} slots\n",
        ns.schedule.frame_length()
    );
    println!(
        "{:>4} {:>4} {:>5} {:>8} {:>8} {:>10} {:>10} {:>12}",
        "a_T", "a_R", "a_T*", "frame", "duty%", "thr_ave", "opt_ratio", "transparent"
    );

    for alpha_t in [1usize, 2, 3, 5] {
        for alpha_r in [2usize, 4, 8, 12] {
            if alpha_t + alpha_r > n {
                continue;
            }
            let c = construct(
                &ns.schedule,
                d,
                alpha_t,
                alpha_r,
                PartitionStrategy::RoundRobin,
            );
            let s = &c.schedule;
            let thr = ttdc::core::average_throughput(s, d);
            let ratio = optimality_ratio(s, d, alpha_t, alpha_r);
            println!(
                "{:>4} {:>4} {:>5} {:>8} {:>8.1} {:>10.6} {:>10.3} {:>12}",
                alpha_t,
                alpha_r,
                c.alpha_t_star,
                s.frame_length(),
                100.0 * s.average_duty_cycle(),
                thr,
                ratio,
                is_topology_transparent(s, d),
            );
        }
    }

    println!(
        "\nTheorem 4 in action: throughput scales with α_R and saturates in \
         α_T at α ≈ (n−D)/D = {:.1}; the construction stays within its \
         optimality bound (Theorem 8) at every point.",
        (n - d) as f64 / d as f64
    );
    let b = alpha_bound(n, d, 5, 12);
    println!(
        "e.g. (α_T=5, α_R=12): Theorem-4 optimum {:.6}, unconstrained α = {}",
        b.thr_star, b.alpha_unconstrained
    );

    // Given only an energy budget ("≤ 30% of the network awake"), let the
    // optimizer pick the split.
    println!("\noptimal splits under a duty-cycle budget:");
    for duty in [0.1f64, 0.2, 0.3, 0.5] {
        if let Some(a) = optimize_budget(n, d, duty) {
            println!(
                "  budget {:>3.0}% → α_T = {}, α_R = {:>2}, Thr* = {:.6}",
                100.0 * duty,
                a.alpha_t,
                a.alpha_r,
                a.thr_star
            );
        }
    }
}
